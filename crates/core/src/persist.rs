//! Binary (de)serialization for indexes.
//!
//! A deliberately small hand-rolled format (little-endian, length-prefixed
//! buffers, magic + version header) rather than a serde dependency: index
//! files are large, flat numeric arrays, and downstream users need a
//! stable on-disk format more than they need derive ergonomics.

use std::io::{self, Read, Write};

/// Magic bytes opening every file written by this workspace.
pub const MAGIC: &[u8; 4] = b"RBQ1";

/// Writes the file header.
pub fn write_header<W: Write>(w: &mut W, section: &str) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_str(w, section)
}

/// Reads and validates the file header, returning the section name.
pub fn read_header<R: Read>(r: &mut R) -> io::Result<String> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(invalid("bad magic — not a rabitq index file"));
    }
    read_str(r)
}

/// Creates an `InvalidData` error.
pub fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Writes one byte.
pub fn write_u8<W: Write>(w: &mut W, v: u8) -> io::Result<()> {
    w.write_all(&[v])
}

/// Reads one byte.
pub fn read_u8<R: Read>(r: &mut R) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

/// Writes a little-endian `u64`.
pub fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads a little-endian `u64`.
pub fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Writes a `usize` as a little-endian `u64`.
pub fn write_usize<W: Write>(w: &mut W, v: usize) -> io::Result<()> {
    write_u64(w, v as u64)
}

/// Reads a `usize` written by [`write_usize`].
pub fn read_usize<R: Read>(r: &mut R) -> io::Result<usize> {
    let v = read_u64(r)?;
    usize::try_from(v).map_err(|_| invalid("length overflows usize"))
}

/// Writes a little-endian `f32`.
pub fn write_f32<W: Write>(w: &mut W, v: f32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads a little-endian `f32`.
pub fn read_f32<R: Read>(r: &mut R) -> io::Result<f32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

/// Writes a length-prefixed UTF-8 string.
pub fn write_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    write_usize(w, s.len())?;
    w.write_all(s.as_bytes())
}

/// Reads a string written by [`write_str`].
pub fn read_str<R: Read>(r: &mut R) -> io::Result<String> {
    let len = read_usize(r)?;
    if len > 1 << 20 {
        return Err(invalid("unreasonable string length"));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| invalid("non-UTF8 string"))
}

/// Length-prefixed `f32` buffer.
pub fn write_f32_slice<W: Write>(w: &mut W, s: &[f32]) -> io::Result<()> {
    write_usize(w, s.len())?;
    for &v in s {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Length-prefixed `f32` buffer.
pub fn read_f32_vec<R: Read>(r: &mut R) -> io::Result<Vec<f32>> {
    let len = read_usize(r)?;
    let bytes = read_len_prefixed(r, len, 4)?;
    Ok(bytes
        .chunks_exact(4)
        .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        .collect())
}

/// Reads `len · elem_size` bytes in bounded chunks. A corrupted length
/// prefix then fails with `UnexpectedEof` once the stream runs dry,
/// instead of trusting the prefix with one huge up-front allocation
/// (a lying 2⁶⁰ count must not abort the process).
fn read_len_prefixed<R: Read>(r: &mut R, len: usize, elem_size: usize) -> io::Result<Vec<u8>> {
    const CHUNK: usize = 1 << 20; // 1 MiB of bytes per step
    let total = len
        .checked_mul(elem_size)
        .ok_or_else(|| invalid("length prefix overflows"))?;
    let mut buf = Vec::new();
    let mut remaining = total;
    while remaining > 0 {
        let step = remaining.min(CHUNK);
        let old = buf.len();
        buf.resize(old + step, 0);
        r.read_exact(&mut buf[old..])?;
        remaining -= step;
    }
    Ok(buf)
}

/// Length-prefixed `u64` buffer.
pub fn write_u64_slice<W: Write>(w: &mut W, s: &[u64]) -> io::Result<()> {
    write_usize(w, s.len())?;
    for &v in s {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Length-prefixed `u64` buffer.
pub fn read_u64_vec<R: Read>(r: &mut R) -> io::Result<Vec<u64>> {
    let len = read_usize(r)?;
    let bytes = read_len_prefixed(r, len, 8)?;
    Ok(bytes
        .chunks_exact(8)
        .map(|b| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
        .collect())
}

/// Length-prefixed `u32` buffer.
pub fn write_u32_slice<W: Write>(w: &mut W, s: &[u32]) -> io::Result<()> {
    write_usize(w, s.len())?;
    for &v in s {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Length-prefixed `u32` buffer.
pub fn read_u32_vec<R: Read>(r: &mut R) -> io::Result<Vec<u32>> {
    let len = read_usize(r)?;
    let bytes = read_len_prefixed(r, len, 4)?;
    Ok(bytes
        .chunks_exact(4)
        .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut buf = Vec::new();
        write_u8(&mut buf, 7).unwrap();
        write_u64(&mut buf, u64::MAX - 3).unwrap();
        write_f32(&mut buf, -1.25).unwrap();
        write_str(&mut buf, "rotator/dense").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_u8(&mut r).unwrap(), 7);
        assert_eq!(read_u64(&mut r).unwrap(), u64::MAX - 3);
        assert_eq!(read_f32(&mut r).unwrap(), -1.25);
        assert_eq!(read_str(&mut r).unwrap(), "rotator/dense");
    }

    #[test]
    fn slices_round_trip() {
        let mut buf = Vec::new();
        write_f32_slice(&mut buf, &[1.0, -2.5, 3.75]).unwrap();
        write_u64_slice(&mut buf, &[u64::MAX, 0, 42]).unwrap();
        write_u32_slice(&mut buf, &[9, 8]).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_f32_vec(&mut r).unwrap(), vec![1.0, -2.5, 3.75]);
        assert_eq!(read_u64_vec(&mut r).unwrap(), vec![u64::MAX, 0, 42]);
        assert_eq!(read_u32_vec(&mut r).unwrap(), vec![9, 8]);
    }

    #[test]
    fn header_round_trip_and_rejection() {
        let mut buf = Vec::new();
        write_header(&mut buf, "ivf-rabitq").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_header(&mut r).unwrap(), "ivf-rabitq");

        let garbage = b"NOPE....";
        assert!(read_header(&mut garbage.as_slice()).is_err());
    }

    #[test]
    fn truncated_buffer_is_an_error() {
        let mut buf = Vec::new();
        write_f32_slice(&mut buf, &[1.0, 2.0, 3.0]).unwrap();
        buf.truncate(buf.len() - 2);
        assert!(read_f32_vec(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn lying_length_prefix_fails_without_huge_allocation() {
        // A prefix claiming 2⁶⁰ floats on an 8-byte stream must error with
        // UnexpectedEof, not attempt a 2⁶²-byte allocation.
        let mut buf = Vec::new();
        write_usize(&mut buf, 1usize << 60).unwrap();
        buf.extend_from_slice(&[0u8; 8]);
        let err = read_f32_vec(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // And an overflowing len · elem_size is caught up front.
        let mut buf = Vec::new();
        write_usize(&mut buf, usize::MAX).unwrap();
        assert!(read_u64_vec(&mut buf.as_slice()).is_err());
    }
}
