//! Query-side quantization (Section 3.3.1).
//!
//! The rotated query residual `q' = P⁻¹(q_r − c)` is normalized and its
//! entries are quantized to `B_q`-bit unsigned integers with **randomized
//! uniform scalar quantization**: a value `v = v_l + m·Δ + t` rounds down
//! with probability `1 − t/Δ` and up with probability `t/Δ`, which makes the
//! quantized inner product unbiased (Eq. 18) and lets Theorem 3.3 bound the
//! extra error with `B_q = Θ(log log D)`; `B_q = 4` in practice.
//!
//! The quantized entries are stored three ways, each serving one kernel:
//! * `qu` — one `u8` per dimension (reference kernel, LUT construction);
//! * `bitplanes` — `B_q` bit-planes of `B` bits each, for the bitwise
//!   AND+popcount kernel (Eq. 21–22);
//! * per-query scalars (`Δ`, `v_l`, `Σq̄_u`, `‖q_r − c‖`) consumed by the
//!   estimator algebra (Eq. 20).

use rabitq_math::vecs;
use rand::Rng;

/// A query residual quantized against one centroid.
#[derive(Clone, Debug)]
pub struct QuantizedQuery {
    padded_dim: usize,
    bq: u8,
    /// Quantized entries `q̄_u[i] ∈ [0, 2^B_q)`.
    qu: Vec<u8>,
    /// `B_q` bit-planes, each `padded_dim/64` words; plane `j` holds bit `j`
    /// of every entry.
    bitplanes: Vec<u64>,
    /// Quantization step `Δ = (v_r − v_l)/(2^B_q − 1)`; `0` for a constant
    /// residual (e.g. the query coincides with the centroid).
    pub delta: f32,
    /// Grid origin `v_l = min_i q'[i]`.
    pub v_l: f32,
    /// `Σ_i q̄_u[i]`, shared across all codes scanned under this query.
    pub sum_qu: u32,
    /// `‖q_r − c‖` — distance from the raw query to the centroid.
    pub q_dist: f32,
}

impl QuantizedQuery {
    /// An empty shell whose buffers are filled by
    /// [`QuantizedQuery::quantize_from_rotated_residual`] — the anchor of
    /// the allocation-free scratch path. Every accessor is valid (all
    /// buffers empty / zero) but the shell estimates nothing useful until
    /// it is quantized.
    pub fn empty() -> Self {
        Self {
            padded_dim: 0,
            bq: 1,
            qu: Vec::new(),
            bitplanes: Vec::new(),
            delta: 0.0,
            v_l: 0.0,
            sum_qu: 0,
            q_dist: 0.0,
        }
    }

    /// Quantizes a rotated query residual `P⁻¹(q_r − c)` (unnormalized;
    /// rotation preserves the norm, so `‖q_r − c‖` is recovered here).
    ///
    /// # Panics
    /// Panics unless `rotated.len()` is a positive multiple of 64 and
    /// `1 ≤ bq ≤ 8`.
    pub fn from_rotated_residual<R: Rng + ?Sized>(rotated: &[f32], bq: u8, rng: &mut R) -> Self {
        let mut q = Self::empty();
        q.quantize_from_rotated_residual(rotated, bq, rng);
        q
    }

    /// [`QuantizedQuery::from_rotated_residual`] into `self`, reusing the
    /// entry and bit-plane buffers. After the first call with a given
    /// shape this performs **no heap allocation** — the IVF hot path calls
    /// it once per probed bucket on one scratch query.
    ///
    /// # Panics
    /// Same contract as [`QuantizedQuery::from_rotated_residual`].
    pub fn quantize_from_rotated_residual<R: Rng + ?Sized>(
        &mut self,
        rotated: &[f32],
        bq: u8,
        rng: &mut R,
    ) {
        let padded_dim = rotated.len();
        assert!(
            padded_dim > 0 && padded_dim.is_multiple_of(64),
            "rotated residual length must be a positive multiple of 64"
        );
        assert!((1..=8).contains(&bq), "B_q must be in 1..=8");

        let q_dist = vecs::norm(rotated);
        let words = padded_dim / 64;
        let levels = (1u32 << bq) - 1;

        self.qu.resize(padded_dim, 0);
        let qu = &mut self.qu[..];
        let (mut v_l, mut delta) = (0.0f32, 0.0f32);
        let mut wrote_entries = false;
        if q_dist > f32::EPSILON {
            let inv_norm = 1.0 / q_dist;
            // Normalized entries; computed on the fly to avoid an extra
            // allocation of q'.
            let (lo, hi) = vecs::min_max(rotated);
            v_l = lo * inv_norm;
            let v_r = hi * inv_norm;
            delta = (v_r - v_l) / levels as f32;
            if delta > 0.0 {
                let inv_delta = 1.0 / delta;
                for (slot, &raw) in qu.iter_mut().zip(rotated.iter()) {
                    let v = raw * inv_norm;
                    let pos = (v - v_l) * inv_delta + rng.gen_range(0.0f32..1.0);
                    *slot = (pos as u32).min(levels) as u8;
                }
                wrote_entries = true;
            }
            // delta == 0 (all entries equal): every q̄_u stays 0 and the
            // estimator's v_l term carries the whole value.
        }
        if !wrote_entries {
            qu.fill(0);
        }

        let sum_qu: u32 = qu.iter().map(|&v| v as u32).sum();
        self.bitplanes.resize(bq as usize * words, 0);
        self.bitplanes.fill(0);
        for (d, &v) in qu.iter().enumerate() {
            let word = d / 64;
            let bit = d % 64;
            for j in 0..bq as usize {
                if (v >> j) & 1 == 1 {
                    self.bitplanes[j * words + word] |= 1u64 << bit;
                }
            }
        }

        self.padded_dim = padded_dim;
        self.bq = bq;
        self.delta = delta;
        self.v_l = v_l;
        self.sum_qu = sum_qu;
        self.q_dist = q_dist;
    }

    /// Code length `B` this query was quantized for.
    #[inline]
    pub fn padded_dim(&self) -> usize {
        self.padded_dim
    }

    /// Number of quantization bits `B_q`.
    #[inline]
    pub fn bq(&self) -> u8 {
        self.bq
    }

    /// Quantized entries, one per dimension.
    #[inline]
    pub fn qu(&self) -> &[u8] {
        &self.qu
    }

    /// Bit-plane `j` (`0 ≤ j < B_q`) as `padded_dim/64` words.
    #[inline]
    pub fn bitplane(&self, j: usize) -> &[u64] {
        let words = self.padded_dim / 64;
        &self.bitplanes[j * words..(j + 1) * words]
    }

    /// The de-quantized value `v_l + Δ·q̄_u[i]` of entry `i` — the entry of
    /// the quantized unit query `q̄`.
    #[inline]
    pub fn dequantized(&self, i: usize) -> f32 {
        self.v_l + self.delta * self.qu[i] as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_residual(dim: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        rabitq_math::rng::standard_normal_vec(&mut rng, dim)
    }

    #[test]
    fn entries_stay_within_bq_range() {
        let residual = sample_residual(256, 1);
        let mut rng = StdRng::seed_from_u64(2);
        for bq in 1..=8u8 {
            let q = QuantizedQuery::from_rotated_residual(&residual, bq, &mut rng);
            let max = (1u32 << bq) - 1;
            assert!(q.qu().iter().all(|&v| (v as u32) <= max), "bq={bq}");
        }
    }

    #[test]
    fn bitplanes_reconstruct_qu() {
        let residual = sample_residual(192, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let q = QuantizedQuery::from_rotated_residual(&residual, 4, &mut rng);
        for d in 0..192 {
            let mut v = 0u8;
            for j in 0..4 {
                let w = q.bitplane(j)[d / 64];
                if (w >> (d % 64)) & 1 == 1 {
                    v |= 1 << j;
                }
            }
            assert_eq!(v, q.qu()[d], "dimension {d}");
        }
    }

    #[test]
    fn quantization_error_is_within_one_step() {
        let residual = sample_residual(512, 5);
        let norm = vecs::norm(&residual);
        let mut rng = StdRng::seed_from_u64(6);
        let q = QuantizedQuery::from_rotated_residual(&residual, 4, &mut rng);
        for (i, &raw) in residual.iter().enumerate() {
            let exact = raw / norm;
            let approx = q.dequantized(i);
            assert!(
                (exact - approx).abs() <= q.delta * 1.0001,
                "entry {i}: exact {exact}, approx {approx}, Δ {}",
                q.delta
            );
        }
    }

    #[test]
    fn randomized_rounding_is_unbiased_in_the_mean() {
        // Quantize the same residual many times; the mean de-quantized value
        // of each entry must converge to the exact value (Sec. 3.3.1).
        let residual = sample_residual(64, 7);
        let norm = vecs::norm(&residual);
        let trials = 4000;
        let mut rng = StdRng::seed_from_u64(8);
        let mut sums = vec![0.0f64; 64];
        for _ in 0..trials {
            let q = QuantizedQuery::from_rotated_residual(&residual, 3, &mut rng);
            for (i, s) in sums.iter_mut().enumerate() {
                *s += q.dequantized(i) as f64;
            }
        }
        for (i, &raw) in residual.iter().enumerate() {
            let exact = (raw / norm) as f64;
            let mean = sums[i] / trials as f64;
            // Standard error of the mean is ≤ Δ/√trials ≈ 0.3/63 ≈ 0.005.
            assert!(
                (mean - exact).abs() < 0.01,
                "entry {i}: mean {mean} vs exact {exact}"
            );
        }
    }

    #[test]
    fn sum_qu_matches_entries() {
        let residual = sample_residual(128, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let q = QuantizedQuery::from_rotated_residual(&residual, 4, &mut rng);
        let manual: u32 = q.qu().iter().map(|&v| v as u32).sum();
        assert_eq!(q.sum_qu, manual);
    }

    #[test]
    fn q_dist_equals_residual_norm() {
        let residual = sample_residual(128, 11);
        let mut rng = StdRng::seed_from_u64(12);
        let q = QuantizedQuery::from_rotated_residual(&residual, 4, &mut rng);
        assert!((q.q_dist - vecs::norm(&residual)).abs() < 1e-5);
    }

    #[test]
    fn zero_residual_is_handled() {
        let residual = vec![0.0f32; 64];
        let mut rng = StdRng::seed_from_u64(13);
        let q = QuantizedQuery::from_rotated_residual(&residual, 4, &mut rng);
        assert_eq!(q.q_dist, 0.0);
        assert_eq!(q.sum_qu, 0);
        assert_eq!(q.delta, 0.0);
    }

    #[test]
    fn constant_residual_yields_zero_delta_but_correct_v_l() {
        // All entries equal → v_l carries the whole (normalized) value.
        let residual = vec![2.0f32; 64];
        let mut rng = StdRng::seed_from_u64(14);
        let q = QuantizedQuery::from_rotated_residual(&residual, 4, &mut rng);
        assert_eq!(q.delta, 0.0);
        let expected = 1.0 / (64.0f32).sqrt(); // normalized constant entry
        assert!((q.v_l - expected).abs() < 1e-5);
        assert_eq!(q.sum_qu, 0);
    }

    #[test]
    fn reused_shell_matches_fresh_quantization_bit_for_bit() {
        // The scratch path must be indistinguishable from the allocating
        // one, including across shape changes (shrinking then growing).
        let mut shell = QuantizedQuery::empty();
        for (dim, bq, seed) in [(256usize, 4u8, 21u64), (64, 3, 22), (192, 6, 23)] {
            let residual = sample_residual(dim, seed);
            let mut rng_a = StdRng::seed_from_u64(seed ^ 0xAB);
            let mut rng_b = StdRng::seed_from_u64(seed ^ 0xAB);
            let fresh = QuantizedQuery::from_rotated_residual(&residual, bq, &mut rng_a);
            shell.quantize_from_rotated_residual(&residual, bq, &mut rng_b);
            assert_eq!(shell.qu(), fresh.qu(), "dim={dim} bq={bq}");
            assert_eq!(shell.padded_dim(), fresh.padded_dim());
            assert_eq!(shell.bq(), fresh.bq());
            assert_eq!(shell.delta, fresh.delta);
            assert_eq!(shell.v_l, fresh.v_l);
            assert_eq!(shell.sum_qu, fresh.sum_qu);
            assert_eq!(shell.q_dist, fresh.q_dist);
            for j in 0..bq as usize {
                assert_eq!(shell.bitplane(j), fresh.bitplane(j), "plane {j}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "B_q")]
    fn bq_zero_is_rejected() {
        let residual = vec![1.0f32; 64];
        let mut rng = StdRng::seed_from_u64(15);
        QuantizedQuery::from_rotated_residual(&residual, 0, &mut rng);
    }
}
