//! Property-based tests for dataset generation and ground truth.

use proptest::prelude::*;
use rabitq_data::generate::{generate, DatasetSpec, Profile};
use rabitq_data::ground_truth::{exact_knn, knn_single};
use rabitq_math::vecs;

fn clustered_spec(n: usize, dim: usize, seed: u64) -> DatasetSpec {
    DatasetSpec {
        name: "prop".into(),
        dim,
        n,
        n_queries: 3,
        profile: Profile::Clustered {
            clusters: 4,
            cluster_std: 0.5,
            center_scale: 2.0,
        },
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn generated_shapes_match_spec(n in 1usize..100, dim in 1usize..32, seed in 0u64..100) {
        let ds = generate(&clustered_spec(n, dim, seed));
        prop_assert_eq!(ds.n(), n);
        prop_assert_eq!(ds.n_queries(), 3);
        prop_assert_eq!(ds.data.len(), n * dim);
        prop_assert!(ds.data.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn knn_is_sorted_and_truly_nearest(n in 2usize..60, seed in 0u64..100) {
        let dim = 6;
        let ds = generate(&clustered_spec(n, dim, seed));
        let k = 5.min(n);
        let nbrs = knn_single(&ds.data, dim, ds.query(0), k);
        prop_assert_eq!(nbrs.len(), k);
        prop_assert!(nbrs.windows(2).all(|w| w[0].1 <= w[1].1));
        // Nothing outside the answer may beat the k-th entry.
        let kth = nbrs.last().unwrap().1;
        let ids: Vec<u32> = nbrs.iter().map(|&(id, _)| id).collect();
        for i in 0..n {
            if !ids.contains(&(i as u32)) {
                let d = vecs::l2_sq(ds.vector(i), ds.query(0));
                prop_assert!(d >= kth - 1e-5);
            }
        }
    }

    #[test]
    fn threaded_ground_truth_is_thread_count_invariant(n in 4usize..50, seed in 0u64..50) {
        let dim = 4;
        let ds = generate(&clustered_spec(n, dim, seed));
        let a = exact_knn(&ds.data, dim, &ds.queries, 3, 1);
        let b = exact_knn(&ds.data, dim, &ds.queries, 3, 3);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn reported_distances_are_correct(n in 2usize..40, seed in 0u64..50) {
        let dim = 5;
        let ds = generate(&clustered_spec(n, dim, seed));
        let nbrs = knn_single(&ds.data, dim, ds.query(1), 3.min(n));
        for &(id, d) in &nbrs {
            let want = vecs::l2_sq(ds.vector(id as usize), ds.query(1));
            prop_assert!((d - want).abs() < 1e-5);
        }
    }
}
