//! Synthetic dataset generation.
//!
//! Each [`Profile`] reproduces the statistical trait of a dataset family
//! that the paper's evaluation exercises; DESIGN.md §5 documents the
//! substitution rationale per dataset.

use rabitq_math::rng::GaussianSource;
use rabitq_math::vecs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated dataset: base vectors plus held-out queries drawn from the
/// same distribution.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Human-readable name (e.g. `"msong-like"`).
    pub name: String,
    /// Dimensionality.
    pub dim: usize,
    /// Base vectors, flat `n × dim`.
    pub data: Vec<f32>,
    /// Query vectors, flat `n_queries × dim`.
    pub queries: Vec<f32>,
}

impl Dataset {
    /// Number of base vectors.
    #[inline]
    pub fn n(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Number of queries.
    #[inline]
    pub fn n_queries(&self) -> usize {
        self.queries.len() / self.dim
    }

    /// Base vector `i`.
    #[inline]
    pub fn vector(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Query `i`.
    #[inline]
    pub fn query(&self, i: usize) -> &[f32] {
        &self.queries[i * self.dim..(i + 1) * self.dim]
    }
}

/// Statistical profile of the generated data.
#[derive(Clone, Debug)]
pub enum Profile {
    /// Gaussian mixture: `clusters` isotropic blobs with centers scaled by
    /// `center_scale` and per-cluster std `cluster_std`. The generic shape
    /// of SIFT/Image-like descriptor datasets.
    Clustered {
        /// Number of mixture components.
        clusters: usize,
        /// Isotropic standard deviation within a component.
        cluster_std: f32,
        /// Scale applied to the component centers.
        center_scale: f32,
    },
    /// Clustered, then every vector normalized to unit length — the shape
    /// of DEEP-like neural embeddings.
    UnitNorm {
        /// Number of mixture components.
        clusters: usize,
        /// Isotropic standard deviation before normalization.
        cluster_std: f32,
    },
    /// Low-rank correlated: `x = A·z + ε` with a shared `dim × rank`
    /// mixing matrix — GIST-like global descriptors whose energy lives in
    /// a small subspace.
    LowRank {
        /// Number of mixture components in the latent space.
        clusters: usize,
        /// Dimensionality of the latent subspace.
        rank: usize,
        /// Full-dimensional additive noise std.
        noise: f32,
    },
    /// Heterogeneous per-dimension scales plus magnitude outliers:
    /// coordinate `d` is multiplied by `exp(N(0, scale_sigma²))`, and a
    /// fraction `outlier_rate` of vectors is further scaled by
    /// `outlier_scale`. The outliers capture sub-codebook centroids during
    /// PQ training and inflate the query LUT ranges; with u8-quantized
    /// LUTs (PQx4fs) the step `Δ = max_range/255` then dwarfs typical
    /// distances and the estimates collapse — the MSong failure of
    /// Sections 5.2.1/5.2.3. RaBitQ is unaffected: its per-bucket
    /// normalization stores magnitudes exactly and its LUT entries are
    /// exact small integers.
    HeterogeneousScales {
        /// Number of mixture components.
        clusters: usize,
        /// `exp(N(0, σ²))` per-dimension scale spread.
        scale_sigma: f32,
        /// Fraction of vectors scaled into outliers.
        outlier_rate: f32,
        /// Multiplier applied to outlier vectors.
        outlier_scale: f32,
    },
    /// Power-law cluster sizes with anisotropic per-cluster spreads —
    /// Word2Vec-like token embeddings.
    HeavyTailed {
        /// Number of power-law-sized clusters.
        clusters: usize,
    },
}

/// A full generation request.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Display name carried into results tables.
    pub name: String,
    /// Dimensionality `D`.
    pub dim: usize,
    /// Number of base vectors.
    pub n: usize,
    /// Number of query vectors.
    pub n_queries: usize,
    /// Distributional shape (see [`Profile`]).
    pub profile: Profile,
    /// RNG seed; base and query streams are derived from it.
    pub seed: u64,
}

/// Generates base and query vectors per the spec. Queries come from the
/// same process with a derived RNG stream, so they are i.i.d. with the
/// base set but never identical to it.
pub fn generate(spec: &DatasetSpec) -> Dataset {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut gauss = GaussianSource::new();

    // Sample the shared structure once, then draw base and queries from it.
    match &spec.profile {
        Profile::Clustered {
            clusters,
            cluster_std,
            center_scale,
        } => {
            let centers = sample_centers(&mut rng, &mut gauss, *clusters, spec.dim, *center_scale);
            let draw = |rng: &mut StdRng, gauss: &mut GaussianSource, out: &mut [f32]| {
                let c = rng.gen_range(0..centers.len() / spec.dim);
                gauss.fill(rng, out);
                for (x, &cv) in out
                    .iter_mut()
                    .zip(&centers[c * spec.dim..(c + 1) * spec.dim])
                {
                    *x = cv + *x * cluster_std;
                }
            };
            finish(spec, rng, gauss, draw)
        }
        Profile::UnitNorm {
            clusters,
            cluster_std,
        } => {
            let centers = sample_centers(&mut rng, &mut gauss, *clusters, spec.dim, 1.0);
            let draw = |rng: &mut StdRng, gauss: &mut GaussianSource, out: &mut [f32]| {
                let c = rng.gen_range(0..centers.len() / spec.dim);
                gauss.fill(rng, out);
                for (x, &cv) in out
                    .iter_mut()
                    .zip(&centers[c * spec.dim..(c + 1) * spec.dim])
                {
                    *x = cv + *x * cluster_std;
                }
                vecs::normalize(out);
            };
            finish(spec, rng, gauss, draw)
        }
        Profile::LowRank {
            clusters,
            rank,
            noise,
        } => {
            let rank = (*rank).min(spec.dim).max(1);
            // Shared mixing matrix A: dim × rank with N(0, 1/√rank) entries.
            let mut mixing = vec![0.0f32; spec.dim * rank];
            gauss.fill(&mut rng, &mut mixing);
            let scale = 1.0 / (rank as f32).sqrt();
            vecs::scale(&mut mixing, scale);
            let centers = sample_centers(&mut rng, &mut gauss, *clusters, rank, 2.0);
            let draw = move |rng: &mut StdRng, gauss: &mut GaussianSource, out: &mut [f32]| {
                let c = rng.gen_range(0..centers.len() / rank);
                let mut z = vec![0.0f32; rank];
                gauss.fill(rng, &mut z);
                for (zv, &cv) in z.iter_mut().zip(&centers[c * rank..(c + 1) * rank]) {
                    *zv += cv;
                }
                for (d, x) in out.iter_mut().enumerate() {
                    *x = vecs::dot(&mixing[d * rank..(d + 1) * rank], &z)
                        + gauss.sample(rng) as f32 * noise;
                }
            };
            finish(spec, rng, gauss, draw)
        }
        Profile::HeterogeneousScales {
            clusters,
            scale_sigma,
            outlier_rate,
            outlier_scale,
        } => {
            // Per-dimension log-normal scales shared by base and queries.
            let mut scales = vec![0.0f32; spec.dim];
            for s in scales.iter_mut() {
                *s = (gauss.sample(&mut rng) * *scale_sigma as f64).exp() as f32;
            }
            let centers = sample_centers(&mut rng, &mut gauss, *clusters, spec.dim, 1.0);
            let (outlier_rate, outlier_scale) = (*outlier_rate, *outlier_scale);
            let draw = move |rng: &mut StdRng, gauss: &mut GaussianSource, out: &mut [f32]| {
                let c = rng.gen_range(0..centers.len() / spec.dim);
                let boost = if rng.gen_range(0.0f32..1.0) < outlier_rate {
                    outlier_scale
                } else {
                    1.0
                };
                gauss.fill(rng, out);
                for ((x, &cv), &s) in out
                    .iter_mut()
                    .zip(&centers[c * spec.dim..(c + 1) * spec.dim])
                    .zip(scales.iter())
                {
                    *x = (cv + *x) * s * boost;
                }
            };
            finish(spec, rng, gauss, draw)
        }
        Profile::HeavyTailed { clusters } => {
            let centers = sample_centers(&mut rng, &mut gauss, *clusters, spec.dim, 3.0);
            // Zipf-ish cluster weights and per-cluster anisotropy.
            let k = *clusters;
            let weights: Vec<f64> = (0..k).map(|i| 1.0 / (i + 1) as f64).collect();
            let total: f64 = weights.iter().sum();
            let spreads: Vec<f32> = (0..k).map(|i| 0.3 + 1.5 / (1.0 + i as f32)).collect();
            let draw = move |rng: &mut StdRng, gauss: &mut GaussianSource, out: &mut [f32]| {
                let mut target = rng.gen_range(0.0..total);
                let mut c = k - 1;
                for (i, &w) in weights.iter().enumerate() {
                    if target < w {
                        c = i;
                        break;
                    }
                    target -= w;
                }
                gauss.fill(rng, out);
                for (d, (x, &cv)) in out
                    .iter_mut()
                    .zip(&centers[c * spec.dim..(c + 1) * spec.dim])
                    .enumerate()
                {
                    // Mild coordinate anisotropy on top of cluster spread.
                    let aniso = 1.0 + 0.5 * ((d % 7) as f32 / 7.0);
                    *x = cv + *x * spreads[c] * aniso;
                }
            };
            finish(spec, rng, gauss, draw)
        }
    }
}

fn sample_centers(
    rng: &mut StdRng,
    gauss: &mut GaussianSource,
    clusters: usize,
    dim: usize,
    scale: f32,
) -> Vec<f32> {
    let clusters = clusters.max(1);
    let mut centers = vec![0.0f32; clusters * dim];
    gauss.fill(rng, &mut centers);
    vecs::scale(&mut centers, scale);
    centers
}

fn finish(
    spec: &DatasetSpec,
    mut rng: StdRng,
    mut gauss: GaussianSource,
    mut draw: impl FnMut(&mut StdRng, &mut GaussianSource, &mut [f32]),
) -> Dataset {
    let mut data = vec![0.0f32; spec.n * spec.dim];
    for row in data.chunks_exact_mut(spec.dim) {
        draw(&mut rng, &mut gauss, row);
    }
    let mut queries = vec![0.0f32; spec.n_queries * spec.dim];
    for row in queries.chunks_exact_mut(spec.dim) {
        draw(&mut rng, &mut gauss, row);
    }
    Dataset {
        name: spec.name.clone(),
        dim: spec.dim,
        data,
        queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(profile: Profile, dim: usize) -> DatasetSpec {
        DatasetSpec {
            name: "test".into(),
            dim,
            n: 500,
            n_queries: 10,
            profile,
            seed: 42,
        }
    }

    #[test]
    fn shapes_match_spec() {
        let ds = generate(&spec(
            Profile::Clustered {
                clusters: 8,
                cluster_std: 0.5,
                center_scale: 3.0,
            },
            24,
        ));
        assert_eq!(ds.n(), 500);
        assert_eq!(ds.n_queries(), 10);
        assert_eq!(ds.vector(0).len(), 24);
        assert_eq!(ds.query(9).len(), 24);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let p = || Profile::Clustered {
            clusters: 4,
            cluster_std: 1.0,
            center_scale: 2.0,
        };
        let a = generate(&spec(p(), 16));
        let b = generate(&spec(p(), 16));
        assert_eq!(a.data, b.data);
        assert_eq!(a.queries, b.queries);
        let mut other = spec(p(), 16);
        other.seed = 43;
        let c = generate(&other);
        assert_ne!(a.data, c.data);
    }

    #[test]
    fn unit_norm_profile_normalizes_vectors() {
        let ds = generate(&spec(
            Profile::UnitNorm {
                clusters: 4,
                cluster_std: 0.3,
            },
            32,
        ));
        for i in 0..ds.n() {
            let n = vecs::norm(ds.vector(i));
            assert!((n - 1.0).abs() < 1e-4, "vector {i} norm {n}");
        }
    }

    #[test]
    fn clustered_data_is_actually_clustered() {
        // Mean pairwise distance within the dataset must be far larger than
        // the within-cluster std, indicating multi-modal structure.
        let ds = generate(&spec(
            Profile::Clustered {
                clusters: 8,
                cluster_std: 0.1,
                center_scale: 5.0,
            },
            16,
        ));
        let mut near = 0usize;
        for i in 1..100 {
            let d = vecs::l2_sq(ds.vector(0), ds.vector(i)).sqrt();
            if d < 1.0 {
                near += 1;
            }
        }
        // Roughly 1/8 of vectors share vector 0's cluster.
        assert!(near > 2 && near < 40, "near = {near}");
    }

    #[test]
    fn low_rank_profile_concentrates_energy() {
        let ds = generate(&spec(
            Profile::LowRank {
                clusters: 4,
                rank: 4,
                noise: 0.01,
            },
            64,
        ));
        // Verify correlation: the Gram matrix of a few vectors should be
        // far from diagonal. Cheap proxy: |⟨v0, v1⟩| relative to norms is
        // larger than for isotropic Gaussians (where it is ~1/√D).
        let mut strong = 0;
        for i in 1..50 {
            let cos = vecs::dot(ds.vector(0), ds.vector(i))
                / (vecs::norm(ds.vector(0)) * vecs::norm(ds.vector(i)));
            if cos.abs() > 0.3 {
                strong += 1;
            }
        }
        assert!(strong > 5, "only {strong} strongly-correlated pairs");
    }

    #[test]
    fn heterogeneous_scales_span_orders_of_magnitude() {
        let ds = generate(&spec(
            Profile::HeterogeneousScales {
                clusters: 4,
                scale_sigma: 2.0,
                outlier_rate: 0.0,
                outlier_scale: 1.0,
            },
            64,
        ));
        // Per-dimension std across the dataset must vary by ≥ 30×.
        let mut stds = Vec::new();
        for d in 0..64 {
            let mut acc = 0.0f64;
            let mut acc2 = 0.0f64;
            for i in 0..ds.n() {
                let v = ds.vector(i)[d] as f64;
                acc += v;
                acc2 += v * v;
            }
            let mean = acc / ds.n() as f64;
            stds.push((acc2 / ds.n() as f64 - mean * mean).sqrt());
        }
        let max = stds.iter().cloned().fold(0.0, f64::max);
        let min = stds.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min > 30.0, "scale ratio {}", max / min);
    }

    #[test]
    fn heavy_tailed_profile_produces_imbalanced_clusters() {
        let ds = generate(&spec(Profile::HeavyTailed { clusters: 10 }, 16));
        assert_eq!(ds.n(), 500);
        // The largest cluster (weight ∝ 1) holds ~1/H(10) ≈ 34% of points;
        // sanity-check by counting vectors near the densest region.
        // (Statistical smoke test only: verify data is finite and varied.)
        assert!(ds.data.iter().all(|x| x.is_finite()));
        let spread = vecs::l2_sq(ds.vector(0), ds.vector(1));
        assert!(spread > 0.0);
    }

    #[test]
    fn queries_differ_from_base_vectors() {
        let ds = generate(&spec(
            Profile::Clustered {
                clusters: 4,
                cluster_std: 1.0,
                center_scale: 2.0,
            },
            16,
        ));
        for qi in 0..ds.n_queries() {
            for i in 0..ds.n() {
                assert!(vecs::l2_sq(ds.query(qi), ds.vector(i)) > 0.0);
            }
        }
    }
}
