//! Exact K-nearest-neighbor ground truth via threaded brute force.
//!
//! Recall and average-distance-ratio metrics (Section 5.1) need the true
//! top-K per query. A bounded max-heap per query keeps the scan O(N·D +
//! N·log K); queries are distributed over worker threads.

use rabitq_math::vecs;
use std::cmp::Ordering;

/// The exact top-K of one query: `(index, squared distance)` ascending.
pub type Neighbors = Vec<(u32, f32)>;

/// A max-heap entry ordered by distance (ties by index for determinism).
#[derive(PartialEq)]
struct HeapItem(f32, u32);

impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .total_cmp(&other.0)
            .then_with(|| self.1.cmp(&other.1))
    }
}

/// Computes the exact `k` nearest base vectors for every query.
///
/// `data` is flat `n × dim`, `queries` flat `nq × dim`. Returns one sorted
/// neighbor list per query. `threads = 1` disables threading.
pub fn exact_knn(
    data: &[f32],
    dim: usize,
    queries: &[f32],
    k: usize,
    threads: usize,
) -> Vec<Neighbors> {
    assert!(dim > 0, "dim must be positive");
    assert!(data.len().is_multiple_of(dim), "data shape");
    assert!(queries.len().is_multiple_of(dim), "queries shape");
    let nq = queries.len() / dim;
    let mut out: Vec<Neighbors> = vec![Vec::new(); nq];
    if nq == 0 {
        return out;
    }
    let threads = threads.max(1).min(nq);
    let chunk = nq.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut remaining: &mut [Neighbors] = &mut out;
        for t in 0..threads {
            let start = t * chunk;
            if start >= nq {
                break;
            }
            let rows = chunk.min(nq - start);
            let (mine, rest) = remaining.split_at_mut(rows);
            remaining = rest;
            let queries_chunk = &queries[start * dim..(start + rows) * dim];
            scope.spawn(move || {
                for (q, slot) in queries_chunk.chunks_exact(dim).zip(mine.iter_mut()) {
                    *slot = knn_single(data, dim, q, k);
                }
            });
        }
    });
    out
}

/// Exact top-K for a single query.
pub fn knn_single(data: &[f32], dim: usize, query: &[f32], k: usize) -> Neighbors {
    let n = data.len() / dim;
    let k = k.min(n);
    let mut heap = std::collections::BinaryHeap::with_capacity(k + 1);
    for (i, row) in data.chunks_exact(dim).enumerate() {
        let d = vecs::l2_sq(row, query);
        if heap.len() < k {
            heap.push(HeapItem(d, i as u32));
        } else if let Some(top) = heap.peek() {
            if d < top.0 {
                heap.pop();
                heap.push(HeapItem(d, i as u32));
            }
        }
    }
    let mut result: Neighbors = heap.into_iter().map(|HeapItem(d, i)| (i, d)).collect();
    result.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabitq_math::rng::standard_normal_vec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn finds_the_planted_nearest_neighbor() {
        let dim = 8;
        let mut rng = StdRng::seed_from_u64(1);
        let mut data = standard_normal_vec(&mut rng, 100 * dim);
        let query = standard_normal_vec(&mut rng, dim);
        // Plant an almost-identical vector at index 42.
        for d in 0..dim {
            data[42 * dim + d] = query[d] + 1e-4;
        }
        let gt = exact_knn(&data, dim, &query, 5, 1);
        assert_eq!(gt[0][0].0, 42);
    }

    #[test]
    fn results_are_sorted_and_exactly_k() {
        let dim = 4;
        let mut rng = StdRng::seed_from_u64(2);
        let data = standard_normal_vec(&mut rng, 50 * dim);
        let queries = standard_normal_vec(&mut rng, 3 * dim);
        let gt = exact_knn(&data, dim, &queries, 10, 1);
        assert_eq!(gt.len(), 3);
        for nbrs in &gt {
            assert_eq!(nbrs.len(), 10);
            assert!(nbrs.windows(2).all(|w| w[0].1 <= w[1].1));
        }
    }

    #[test]
    fn matches_full_sort_reference() {
        let dim = 6;
        let mut rng = StdRng::seed_from_u64(3);
        let data = standard_normal_vec(&mut rng, 80 * dim);
        let query = standard_normal_vec(&mut rng, dim);
        let fast = knn_single(&data, dim, &query, 7);
        let mut all: Vec<(u32, f32)> = data
            .chunks_exact(dim)
            .enumerate()
            .map(|(i, row)| (i as u32, vecs::l2_sq(row, &query)))
            .collect();
        all.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        all.truncate(7);
        assert_eq!(fast, all);
    }

    #[test]
    fn threaded_matches_single_threaded() {
        let dim = 5;
        let mut rng = StdRng::seed_from_u64(4);
        let data = standard_normal_vec(&mut rng, 60 * dim);
        let queries = standard_normal_vec(&mut rng, 8 * dim);
        let single = exact_knn(&data, dim, &queries, 4, 1);
        let multi = exact_knn(&data, dim, &queries, 4, 4);
        assert_eq!(single, multi);
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let dim = 3;
        let data = vec![0.0f32; 4 * dim];
        let query = vec![1.0f32; dim];
        let gt = knn_single(&data, dim, &query, 100);
        assert_eq!(gt.len(), 4);
    }

    #[test]
    fn empty_queries_yield_empty_result() {
        let data = vec![0.0f32; 12];
        let gt = exact_knn(&data, 3, &[], 2, 2);
        assert!(gt.is_empty());
    }
}
