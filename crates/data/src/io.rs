//! `.fvecs` / `.ivecs` file IO — the interchange format of the public ANN
//! benchmark datasets (SIFT, GIST, …).
//!
//! Layout per vector: a little-endian `u32` dimensionality followed by
//! `dim` little-endian values (`f32` for fvecs, `i32` for ivecs). When the
//! real datasets are available they can be loaded with these readers and
//! run through the same harness as the synthetic ones.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Reads an `.fvecs` file into a flat `n × dim` buffer.
///
/// Returns `(data, dim)`. Fails if vectors have inconsistent
/// dimensionalities or the file is truncated.
pub fn read_fvecs(path: &Path) -> io::Result<(Vec<f32>, usize)> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut data = Vec::new();
    let mut dim = 0usize;
    loop {
        let mut len_buf = [0u8; 4];
        match reader.read_exact(&mut len_buf) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e),
        }
        let d = u32::from_le_bytes(len_buf) as usize;
        if dim == 0 {
            dim = d;
        } else if dim != d {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("inconsistent dimensionality: {dim} vs {d}"),
            ));
        }
        let mut row = vec![0u8; d * 4];
        reader.read_exact(&mut row)?;
        data.extend(
            row.chunks_exact(4)
                .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]])),
        );
    }
    Ok((data, dim))
}

/// Writes a flat `n × dim` buffer as `.fvecs`.
pub fn write_fvecs(path: &Path, data: &[f32], dim: usize) -> io::Result<()> {
    assert!(dim > 0 && data.len().is_multiple_of(dim), "data shape");
    let mut writer = BufWriter::new(File::create(path)?);
    for row in data.chunks_exact(dim) {
        writer.write_all(&(dim as u32).to_le_bytes())?;
        for &v in row {
            writer.write_all(&v.to_le_bytes())?;
        }
    }
    writer.flush()
}

/// Reads an `.ivecs` file (e.g. ground-truth neighbor ids).
pub fn read_ivecs(path: &Path) -> io::Result<(Vec<i32>, usize)> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut data = Vec::new();
    let mut dim = 0usize;
    loop {
        let mut len_buf = [0u8; 4];
        match reader.read_exact(&mut len_buf) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e),
        }
        let d = u32::from_le_bytes(len_buf) as usize;
        if dim == 0 {
            dim = d;
        } else if dim != d {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("inconsistent dimensionality: {dim} vs {d}"),
            ));
        }
        let mut row = vec![0u8; d * 4];
        reader.read_exact(&mut row)?;
        data.extend(
            row.chunks_exact(4)
                .map(|b| i32::from_le_bytes([b[0], b[1], b[2], b[3]])),
        );
    }
    Ok((data, dim))
}

/// Writes an `.ivecs` file.
pub fn write_ivecs(path: &Path, data: &[i32], dim: usize) -> io::Result<()> {
    assert!(dim > 0 && data.len().is_multiple_of(dim), "data shape");
    let mut writer = BufWriter::new(File::create(path)?);
    for row in data.chunks_exact(dim) {
        writer.write_all(&(dim as u32).to_le_bytes())?;
        for &v in row {
            writer.write_all(&v.to_le_bytes())?;
        }
    }
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("rabitq-io-test-{name}-{}", std::process::id()))
    }

    #[test]
    fn fvecs_round_trip() {
        let path = tmp("f");
        let data = vec![1.0f32, 2.0, 3.0, -4.5, 0.0, 7.25];
        write_fvecs(&path, &data, 3).unwrap();
        let (back, dim) = read_fvecs(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(dim, 3);
        assert_eq!(back, data);
    }

    #[test]
    fn ivecs_round_trip() {
        let path = tmp("i");
        let data = vec![1i32, -2, 300, 4, 5, 6, 7, 8];
        write_ivecs(&path, &data, 4).unwrap();
        let (back, dim) = read_ivecs(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(dim, 4);
        assert_eq!(back, data);
    }

    #[test]
    fn empty_file_reads_as_empty() {
        let path = tmp("e");
        std::fs::write(&path, []).unwrap();
        let (data, dim) = read_fvecs(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(data.is_empty());
        assert_eq!(dim, 0);
    }

    #[test]
    fn truncated_file_is_an_error() {
        let path = tmp("t");
        // Claims 4 floats but provides only 2.
        let mut bytes = 4u32.to_le_bytes().to_vec();
        bytes.extend(1.0f32.to_le_bytes());
        bytes.extend(2.0f32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = read_fvecs(&path);
        std::fs::remove_file(&path).ok();
        assert!(err.is_err());
    }
}
