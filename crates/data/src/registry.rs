//! One constructor per paper dataset (Table 3), at matched dimensionality.
//!
//! | Paper dataset | Size | D | Trait reproduced here |
//! |---|---|---|---|
//! | Msong | 992,272 | 420 | heterogeneous per-dimension scales |
//! | SIFT | 1,000,000 | 128 | clustered local descriptors |
//! | DEEP | 1,000,000 | 256 | unit-norm embeddings |
//! | Word2Vec | 1,000,000 | 300 | heavy-tailed anisotropic clusters |
//! | GIST | 1,000,000 | 960 | low-rank correlated global descriptors |
//! | Image | 2,340,373 | 150 | strongly clustered |
//!
//! Sizes are parameters: the experiment harness defaults to 10⁵-scale (this
//! reproduction runs on a single core; see DESIGN.md §6).

use crate::generate::{generate, Dataset, DatasetSpec, Profile};

/// Identifier for a paper-analogue dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PaperDataset {
    /// MSong-like: 420-d audio features with heterogeneous per-dimension
    /// scales and magnitude outliers (the PQx4fs failure regime).
    Msong,
    /// SIFT-like: 128-d clustered image descriptors.
    Sift,
    /// DEEP-like: 256-d unit-norm neural embeddings.
    Deep,
    /// Word2Vec-like: 300-d heavy-tailed token embeddings.
    Word2Vec,
    /// GIST-like: 960-d low-rank correlated global descriptors.
    Gist,
    /// Image-like: 150-d clustered features, 2.3M-scale in the paper.
    Image,
}

impl PaperDataset {
    /// All six datasets in the paper's Table 3 order.
    pub const ALL: [PaperDataset; 6] = [
        PaperDataset::Msong,
        PaperDataset::Sift,
        PaperDataset::Deep,
        PaperDataset::Word2Vec,
        PaperDataset::Gist,
        PaperDataset::Image,
    ];

    /// Dataset name as used in the paper, suffixed `-like` to signal the
    /// synthetic substitution.
    pub fn name(self) -> &'static str {
        match self {
            PaperDataset::Msong => "msong-like",
            PaperDataset::Sift => "sift-like",
            PaperDataset::Deep => "deep-like",
            PaperDataset::Word2Vec => "word2vec-like",
            PaperDataset::Gist => "gist-like",
            PaperDataset::Image => "image-like",
        }
    }

    /// The paper dataset's dimensionality.
    pub fn dim(self) -> usize {
        match self {
            PaperDataset::Msong => 420,
            PaperDataset::Sift => 128,
            PaperDataset::Deep => 256,
            PaperDataset::Word2Vec => 300,
            PaperDataset::Gist => 960,
            PaperDataset::Image => 150,
        }
    }

    /// Parses a name (with or without the `-like` suffix), case-insensitive.
    pub fn parse(s: &str) -> Option<Self> {
        let lower = s.to_ascii_lowercase();
        let stem = lower.strip_suffix("-like").unwrap_or(&lower);
        match stem {
            "msong" => Some(PaperDataset::Msong),
            "sift" => Some(PaperDataset::Sift),
            "deep" => Some(PaperDataset::Deep),
            "word2vec" => Some(PaperDataset::Word2Vec),
            "gist" => Some(PaperDataset::Gist),
            "image" => Some(PaperDataset::Image),
            _ => None,
        }
    }

    /// Builds the generation spec at the requested scale.
    pub fn spec(self, n: usize, n_queries: usize, seed: u64) -> DatasetSpec {
        let profile = match self {
            PaperDataset::Msong => Profile::HeterogeneousScales {
                clusters: 32,
                scale_sigma: 1.5,
                outlier_rate: 0.02,
                outlier_scale: 30.0,
            },
            PaperDataset::Sift => Profile::Clustered {
                clusters: 64,
                cluster_std: 0.6,
                center_scale: 2.0,
            },
            PaperDataset::Deep => Profile::UnitNorm {
                clusters: 64,
                cluster_std: 0.4,
            },
            PaperDataset::Word2Vec => Profile::HeavyTailed { clusters: 48 },
            PaperDataset::Gist => Profile::LowRank {
                clusters: 32,
                rank: 48,
                noise: 0.05,
            },
            PaperDataset::Image => Profile::Clustered {
                clusters: 128,
                cluster_std: 0.3,
                center_scale: 2.5,
            },
        };
        DatasetSpec {
            name: self.name().to_string(),
            dim: self.dim(),
            n,
            n_queries,
            profile,
            seed,
        }
    }

    /// Generates the dataset at the requested scale.
    pub fn generate(self, n: usize, n_queries: usize, seed: u64) -> Dataset {
        generate(&self.spec(n, n_queries, seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_match_the_paper_table() {
        assert_eq!(PaperDataset::Msong.dim(), 420);
        assert_eq!(PaperDataset::Sift.dim(), 128);
        assert_eq!(PaperDataset::Deep.dim(), 256);
        assert_eq!(PaperDataset::Word2Vec.dim(), 300);
        assert_eq!(PaperDataset::Gist.dim(), 960);
        assert_eq!(PaperDataset::Image.dim(), 150);
    }

    #[test]
    fn parse_accepts_both_name_forms() {
        assert_eq!(PaperDataset::parse("sift"), Some(PaperDataset::Sift));
        assert_eq!(PaperDataset::parse("SIFT-like"), Some(PaperDataset::Sift));
        assert_eq!(PaperDataset::parse("gist-like"), Some(PaperDataset::Gist));
        assert_eq!(PaperDataset::parse("unknown"), None);
    }

    #[test]
    fn every_dataset_generates_at_small_scale() {
        for ds in PaperDataset::ALL {
            let d = ds.generate(200, 5, 1);
            assert_eq!(d.n(), 200, "{}", ds.name());
            assert_eq!(d.n_queries(), 5);
            assert_eq!(d.dim, ds.dim());
            assert!(d.data.iter().all(|x| x.is_finite()), "{}", ds.name());
        }
    }
}
