//! # rabitq-data — dataset substrate
//!
//! The paper evaluates on six public datasets (Table 3) that are not
//! shipped with this repository. This crate provides:
//!
//! * [`generate`] — synthetic generators reproducing the *traits the
//!   evaluation depends on* for each dataset (clustered structure,
//!   unit-norm embeddings, low-rank correlation, heterogeneous
//!   per-dimension scales — the MSong failure trigger);
//! * [`registry`] — one constructor per paper dataset, at matched
//!   dimensionality and configurable scale;
//! * [`ground_truth`] — threaded exact K-NN for recall/ratio metrics;
//! * [`io`] — `.fvecs`/`.ivecs` readers and writers so real datasets can be
//!   dropped in when available.

pub mod generate;
pub mod ground_truth;
pub mod io;
pub mod registry;

pub use generate::{generate, Dataset, DatasetSpec, Profile};
pub use ground_truth::{exact_knn, Neighbors};
