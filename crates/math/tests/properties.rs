//! Property-based tests for the math substrate.

use proptest::prelude::*;
use rabitq_math::hadamard::fwht;
use rabitq_math::vecs;

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-100.0f32..100.0, len)
}

proptest! {
    #[test]
    fn dot_is_commutative(len in 1usize..64, seed in 0u64..1000) {
        let (a, b) = two_vecs(len, seed);
        let ab = vecs::dot(&a, &b);
        let ba = vecs::dot(&b, &a);
        prop_assert!((ab - ba).abs() <= 1e-3 * (1.0 + ab.abs()));
    }

    #[test]
    fn dot_is_bilinear(len in 1usize..48, seed in 0u64..1000, alpha in -5.0f32..5.0) {
        let (a, b) = two_vecs(len, seed);
        let scaled: Vec<f32> = a.iter().map(|x| x * alpha).collect();
        let lhs = vecs::dot(&scaled, &b);
        let rhs = alpha * vecs::dot(&a, &b);
        prop_assert!((lhs - rhs).abs() <= 1e-2 * (1.0 + rhs.abs()));
    }

    #[test]
    fn l2_sq_equals_expansion(len in 1usize..64, seed in 0u64..1000) {
        let (a, b) = two_vecs(len, seed);
        let direct = vecs::l2_sq(&a, &b) as f64;
        let expanded = vecs::dot_f64(&a, &a) + vecs::dot_f64(&b, &b)
            - 2.0 * vecs::dot_f64(&a, &b);
        prop_assert!((direct - expanded).abs() <= 1e-2 * (1.0 + expanded.abs()));
    }

    #[test]
    fn cauchy_schwarz_holds(len in 1usize..64, seed in 0u64..1000) {
        let (a, b) = two_vecs(len, seed);
        let ip = vecs::dot_f64(&a, &b).abs();
        let bound = vecs::norm_sq_f64(&a).sqrt() * vecs::norm_sq_f64(&b).sqrt();
        prop_assert!(ip <= bound * (1.0 + 1e-5) + 1e-6);
    }

    #[test]
    fn triangle_inequality_holds(len in 1usize..48, seed in 0u64..1000) {
        let (a, b) = two_vecs(len, seed);
        let zero = vec![0.0f32; len];
        let ab = vecs::l2_sq(&a, &b).sqrt() as f64;
        let a0 = vecs::l2_sq(&a, &zero).sqrt() as f64;
        let b0 = vecs::l2_sq(&b, &zero).sqrt() as f64;
        prop_assert!(ab <= a0 + b0 + 1e-3);
    }

    #[test]
    fn normalize_yields_unit_norm_or_zero(v in finite_vec(32)) {
        let mut w = v.clone();
        let n = vecs::normalize(&mut w);
        if n > f32::EPSILON {
            prop_assert!((vecs::norm(&w) - 1.0).abs() < 1e-3);
        } else {
            prop_assert_eq!(w, v);
        }
    }

    #[test]
    fn min_max_brackets_every_element(v in finite_vec(20)) {
        let (lo, hi) = vecs::min_max(&v);
        for &x in &v {
            prop_assert!(x >= lo && x <= hi);
        }
    }

    #[test]
    fn fwht_self_inverse_up_to_scale(seed in 0u64..1000, log_n in 2u32..8) {
        let n = 1usize << log_n;
        let (orig, _) = two_vecs(n, seed);
        let mut v = orig.clone();
        fwht(&mut v);
        fwht(&mut v);
        for (x, y) in v.iter().zip(orig.iter()) {
            prop_assert!((x / n as f32 - y).abs() < 1e-2);
        }
    }

    #[test]
    fn l1_norm_dominates_l2_norm(v in finite_vec(24)) {
        // ‖v‖₂ ≤ ‖v‖₁ ≤ √D·‖v‖₂.
        let l1 = vecs::l1_norm_f64(&v);
        let l2 = vecs::norm_sq_f64(&v).sqrt();
        prop_assert!(l2 <= l1 + 1e-4);
        prop_assert!(l1 <= (v.len() as f64).sqrt() * l2 + 1e-4);
    }
}

fn two_vecs(len: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    (
        rabitq_math::rng::standard_normal_vec(&mut rng, len),
        rabitq_math::rng::standard_normal_vec(&mut rng, len),
    )
}
