//! Gaussian sampling on top of `rand`.
//!
//! `rand` (without `rand_distr`) only provides uniform sampling, so the
//! standard-normal draws needed for random orthogonal matrices and synthetic
//! datasets are generated here with the Marsaglia polar method.

use rand::Rng;

/// A source of standard-normal variates layered over any [`rand::Rng`].
///
/// The Marsaglia polar method produces two variates per accepted pair; the
/// spare is cached so consecutive draws cost ~1.27 uniform pairs on average.
pub struct GaussianSource {
    spare: Option<f64>,
}

impl GaussianSource {
    /// Creates an empty source (no cached spare variate).
    pub fn new() -> Self {
        Self { spare: None }
    }

    /// Draws one standard-normal variate.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        loop {
            let u: f64 = rng.gen_range(-1.0..1.0);
            let v: f64 = rng.gen_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let scale = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * scale);
                return u * scale;
            }
        }
    }

    /// Fills `out` with standard-normal variates.
    pub fn fill<R: Rng + ?Sized>(&mut self, rng: &mut R, out: &mut [f32]) {
        for x in out.iter_mut() {
            *x = self.sample(rng) as f32;
        }
    }
}

impl Default for GaussianSource {
    fn default() -> Self {
        Self::new()
    }
}

/// Convenience: a vector of `n` standard-normal variates.
pub fn standard_normal_vec<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<f32> {
    let mut g = GaussianSource::new();
    let mut v = vec![0.0f32; n];
    g.fill(rng, &mut v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_match_standard_normal() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let v = standard_normal_vec(&mut rng, n);
        let mean: f64 = v.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        let var: f64 = v.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
    }

    #[test]
    fn tail_mass_is_plausible() {
        // P(|X| > 3) ≈ 0.0027 for a standard normal.
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let v = standard_normal_vec(&mut rng, n);
        let tail = v.iter().filter(|&&x| x.abs() > 3.0).count() as f64 / n as f64;
        assert!(tail > 0.0005 && tail < 0.006, "tail {tail}");
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let a = standard_normal_vec(&mut StdRng::seed_from_u64(42), 16);
        let b = standard_normal_vec(&mut StdRng::seed_from_u64(42), 16);
        assert_eq!(a, b);
    }
}
