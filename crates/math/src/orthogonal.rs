//! Random orthogonal matrices and Gram–Schmidt orthonormalization.
//!
//! The paper constructs its codebook by rotating the hypercube vertices with
//! an orthogonal matrix sampled "uniformly from all rotations". Sampling a
//! Gaussian matrix and orthonormalizing its rows (QR with the sign fix of
//! Mezzadri 2007) yields exactly the Haar measure on O(D).

use crate::matrix::Matrix;
use crate::rng::GaussianSource;
use crate::vecs;
use rand::Rng;

/// Orthonormalizes the rows of `m` in place with modified Gram–Schmidt.
///
/// Re-orthogonalizes each row once ("twice is enough" rule) so the result
/// stays orthogonal to ~1e-6 in `f32` even for D in the thousands.
///
/// # Panics
/// Panics if a row degenerates to (numerically) zero, which for Gaussian
/// inputs happens with probability 0.
pub fn gram_schmidt_rows(m: &mut Matrix) {
    let n = m.rows();
    let cols = m.cols();
    for i in 0..n {
        for _pass in 0..2 {
            for j in 0..i {
                // Safe split: row j is before row i.
                let (head, tail) = m.as_mut_slice().split_at_mut(i * cols);
                let rj = &head[j * cols..(j + 1) * cols];
                let ri = &mut tail[..cols];
                let proj = vecs::dot(rj, ri);
                vecs::axpy(-proj, rj, ri);
            }
        }
        let norm = vecs::normalize(m.row_mut(i));
        assert!(norm > 1e-20, "degenerate row {i} in Gram–Schmidt");
    }
}

/// Samples a `dim × dim` orthogonal matrix from the Haar measure.
pub fn random_orthogonal<R: Rng + ?Sized>(rng: &mut R, dim: usize) -> Matrix {
    let mut gauss = GaussianSource::new();
    let mut m = Matrix::zeros(dim, dim);
    gauss.fill(rng, m.as_mut_slice());
    gram_schmidt_rows(&mut m);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_orthogonal_is_orthogonal() {
        let mut rng = StdRng::seed_from_u64(3);
        for dim in [2usize, 8, 33, 128] {
            let p = random_orthogonal(&mut rng, dim);
            let defect = p.orthogonality_defect();
            assert!(defect < 1e-4, "dim {dim}: defect {defect}");
        }
    }

    #[test]
    fn rotation_preserves_norms_and_inner_products() {
        let mut rng = StdRng::seed_from_u64(5);
        let dim = 64;
        let p = random_orthogonal(&mut rng, dim);
        let x = crate::rng::standard_normal_vec(&mut rng, dim);
        let y = crate::rng::standard_normal_vec(&mut rng, dim);
        let mut px = vec![0.0f32; dim];
        let mut py = vec![0.0f32; dim];
        p.matvec(&x, &mut px);
        p.matvec(&y, &mut py);
        let ip_before = vecs::dot(&x, &y);
        let ip_after = vecs::dot(&px, &py);
        assert!((ip_before - ip_after).abs() < 1e-3 * (1.0 + ip_before.abs()));
        assert!((vecs::norm(&x) - vecs::norm(&px)).abs() < 1e-3);
    }

    #[test]
    fn transpose_acts_as_inverse() {
        let mut rng = StdRng::seed_from_u64(9);
        let dim = 48;
        let p = random_orthogonal(&mut rng, dim);
        let x = crate::rng::standard_normal_vec(&mut rng, dim);
        let mut px = vec![0.0f32; dim];
        let mut back = vec![0.0f32; dim];
        p.matvec(&x, &mut px);
        p.matvec_t(&px, &mut back);
        for (a, b) in x.iter().zip(back.iter()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn different_seeds_give_different_rotations() {
        let p1 = random_orthogonal(&mut StdRng::seed_from_u64(1), 16);
        let p2 = random_orthogonal(&mut StdRng::seed_from_u64(2), 16);
        assert_ne!(p1.as_slice(), p2.as_slice());
    }

    #[test]
    fn first_column_is_uniform_on_sphere_in_expectation() {
        // Each coordinate of a Haar-orthogonal matrix has mean 0 and
        // variance 1/D; check the empirical variance over many samples.
        let dim = 16;
        let samples = 400;
        let mut rng = StdRng::seed_from_u64(13);
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        for _ in 0..samples {
            let p = random_orthogonal(&mut rng, dim);
            let v = p[(0, 0)] as f64;
            sum += v;
            sum_sq += v * v;
        }
        let mean = sum / samples as f64;
        let var = sum_sq / samples as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0 / dim as f64).abs() < 0.03, "var {var}");
    }
}
