//! Dense linear-algebra and numeric substrate for the RaBitQ reproduction.
//!
//! This crate deliberately implements everything the rest of the workspace
//! needs from first principles — vector kernels, a small row-major matrix
//! type, orthogonalization, polar decomposition (for the OPQ Procrustes
//! step), the fast Walsh–Hadamard transform, Gaussian sampling and the
//! special functions used by the paper's closed-form expectations — so that
//! the reproduction has no dependency on external BLAS/LAPACK.
//!
//! Conventions:
//! * all vectors are `&[f32]` slices; all matrices are row-major [`Matrix`];
//! * accumulations in reductions are carried out in `f64` where the result
//!   feeds a statistical estimate (norms, inner products of long vectors);
//! * functions never allocate in per-candidate hot paths; callers pass
//!   scratch buffers where needed.

pub mod hadamard;
pub mod matrix;
pub mod orthogonal;
pub mod polar;
pub mod rng;
pub mod special;
pub mod vecs;

pub use matrix::Matrix;
pub use rng::GaussianSource;
