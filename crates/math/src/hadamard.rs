//! Fast Walsh–Hadamard transform and the randomized-Hadamard rotator.
//!
//! The paper samples a dense Haar-orthogonal matrix (O(D²) to apply). A
//! widely used drop-in in production ports of RaBitQ (Lucene, Milvus) is the
//! structured rotation `H·D₃·H·D₂·H·D₁` where `H` is the normalized
//! Walsh–Hadamard transform and `Dᵢ` are random ±1 sign-flip diagonals —
//! an O(D log D) Johnson–Lindenstrauss transform with near-identical
//! empirical behaviour. Both rotators are offered by `rabitq-core`; this
//! module provides the transform itself.

use rand::Rng;

/// In-place unnormalized fast Walsh–Hadamard transform.
///
/// # Panics
/// Panics if `data.len()` is not a power of two.
pub fn fwht(data: &mut [f32]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FWHT length must be a power of two");
    let mut h = 1;
    while h < n {
        for block in data.chunks_exact_mut(h * 2) {
            let (lo, hi) = block.split_at_mut(h);
            for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
                let a = *x;
                let b = *y;
                *x = a + b;
                *y = a - b;
            }
        }
        h *= 2;
    }
}

/// In-place *orthonormal* Walsh–Hadamard transform (`H/√n`), which
/// preserves Euclidean norms exactly (up to round-off).
pub fn fwht_normalized(data: &mut [f32]) {
    fwht(data);
    let scale = 1.0 / (data.len() as f32).sqrt();
    for x in data.iter_mut() {
        *x *= scale;
    }
}

/// Random ±1 sign-flip diagonal, stored as one bit per coordinate.
#[derive(Clone, Debug)]
pub struct SignDiagonal {
    bits: Vec<u64>,
    len: usize,
}

impl SignDiagonal {
    /// Samples a diagonal of `len` independent ±1 signs.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, len: usize) -> Self {
        let words = len.div_ceil(64);
        let mut bits = vec![0u64; words];
        for w in bits.iter_mut() {
            *w = rng.gen();
        }
        // Mask tail bits so equality and popcount-style invariants hold.
        if !len.is_multiple_of(64) {
            let last = bits.len() - 1;
            bits[last] &= (1u64 << (len % 64)) - 1;
        }
        Self { bits, len }
    }

    /// Reconstructs a diagonal from its packed sign bits (see
    /// [`SignDiagonal::bits`]); used by index deserialization.
    ///
    /// # Panics
    /// Panics if `bits` does not hold exactly `len.div_ceil(64)` words.
    pub fn from_bits(bits: Vec<u64>, len: usize) -> Self {
        assert_eq!(bits.len(), len.div_ceil(64), "sign diagonal word count");
        Self { bits, len }
    }

    /// The packed sign bits (bit set ⇒ −1 at that coordinate).
    #[inline]
    pub fn bits(&self) -> &[u64] {
        &self.bits
    }

    /// Length of the diagonal.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the diagonal is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sign at coordinate `i`: `+1.0` or `−1.0`.
    #[inline]
    pub fn sign(&self, i: usize) -> f32 {
        debug_assert!(i < self.len);
        if (self.bits[i / 64] >> (i % 64)) & 1 == 1 {
            -1.0
        } else {
            1.0
        }
    }

    /// Applies the diagonal in place: `data[i] *= sign(i)`.
    pub fn apply(&self, data: &mut [f32]) {
        debug_assert_eq!(data.len(), self.len);
        for (i, x) in data.iter_mut().enumerate() {
            *x *= self.sign(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vecs;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fwht_of_delta_is_constant() {
        let mut v = vec![0.0f32; 8];
        v[0] = 1.0;
        fwht(&mut v);
        assert!(v.iter().all(|&x| x == 1.0));
    }

    #[test]
    fn fwht_is_self_inverse_up_to_n() {
        let mut rng = StdRng::seed_from_u64(1);
        let orig = crate::rng::standard_normal_vec(&mut rng, 64);
        let mut v = orig.clone();
        fwht(&mut v);
        fwht(&mut v);
        for (a, b) in v.iter().zip(orig.iter()) {
            assert!((a / 64.0 - b).abs() < 1e-4);
        }
    }

    #[test]
    fn normalized_fwht_preserves_norm() {
        let mut rng = StdRng::seed_from_u64(2);
        let orig = crate::rng::standard_normal_vec(&mut rng, 256);
        let mut v = orig.clone();
        fwht_normalized(&mut v);
        assert!((vecs::norm(&v) - vecs::norm(&orig)).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fwht_rejects_non_power_of_two() {
        let mut v = vec![0.0f32; 12];
        fwht(&mut v);
    }

    #[test]
    fn sign_diagonal_is_an_involution() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = SignDiagonal::random(&mut rng, 100);
        let orig = crate::rng::standard_normal_vec(&mut rng, 100);
        let mut v = orig.clone();
        d.apply(&mut v);
        d.apply(&mut v);
        assert_eq!(v, orig);
    }

    #[test]
    fn sign_diagonal_signs_are_unit_magnitude_and_mixed() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = SignDiagonal::random(&mut rng, 512);
        let negatives = (0..512).filter(|&i| d.sign(i) < 0.0).count();
        assert!(negatives > 128 && negatives < 384, "negatives {negatives}");
    }
}
