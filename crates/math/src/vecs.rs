//! Vector kernels over `&[f32]` slices.
//!
//! The reductions iterate over `zip`-ed slices so the compiler can elide
//! bounds checks and auto-vectorize; the distance/inner-product kernels are
//! the innermost loops of every index in the workspace.

/// Inner product of two equal-length vectors, accumulated in `f32`.
///
/// This is the throughput kernel used inside scans; for statistically
/// sensitive accumulations over long vectors prefer [`dot_f64`].
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    // Four independent partial sums break the additive dependency chain,
    // which lets LLVM keep several FMA pipes busy.
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    let (a4, a_rest) = a.split_at(chunks * 4);
    let (b4, b_rest) = b.split_at(chunks * 4);
    for (ca, cb) in a4.chunks_exact(4).zip(b4.chunks_exact(4)) {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
    }
    let mut sum = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (x, y) in a_rest.iter().zip(b_rest.iter()) {
        sum += x * y;
    }
    sum
}

/// Inner product accumulated in `f64` for numerically sensitive reductions.
#[inline]
pub fn dot_f64(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| x as f64 * y as f64)
        .sum()
}

/// Squared Euclidean distance `‖a − b‖²`.
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    let (a4, a_rest) = a.split_at(chunks * 4);
    let (b4, b_rest) = b.split_at(chunks * 4);
    for (ca, cb) in a4.chunks_exact(4).zip(b4.chunks_exact(4)) {
        let d0 = ca[0] - cb[0];
        let d1 = ca[1] - cb[1];
        let d2 = ca[2] - cb[2];
        let d3 = ca[3] - cb[3];
        acc[0] += d0 * d0;
        acc[1] += d1 * d1;
        acc[2] += d2 * d2;
        acc[3] += d3 * d3;
    }
    let mut sum = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (x, y) in a_rest.iter().zip(b_rest.iter()) {
        let d = x - y;
        sum += d * d;
    }
    sum
}

/// Euclidean norm `‖a‖`.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Squared Euclidean norm `‖a‖²` accumulated in `f64`.
#[inline]
pub fn norm_sq_f64(a: &[f32]) -> f64 {
    a.iter().map(|&x| x as f64 * x as f64).sum()
}

/// ℓ1 norm `‖a‖₁` accumulated in `f64` (used for `⟨ō,o⟩ = ‖P⁻¹o‖₁/√D`).
#[inline]
pub fn l1_norm_f64(a: &[f32]) -> f64 {
    a.iter().map(|&x| x.abs() as f64).sum()
}

/// `out = a − b`, element-wise.
#[inline]
pub fn sub(a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    for ((o, &x), &y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        *o = x - y;
    }
}

/// `acc += a`, element-wise.
#[inline]
pub fn add_assign(acc: &mut [f32], a: &[f32]) {
    debug_assert_eq!(acc.len(), a.len());
    for (o, &x) in acc.iter_mut().zip(a.iter()) {
        *o += x;
    }
}

/// `acc −= a`, element-wise.
#[inline]
pub fn sub_assign(acc: &mut [f32], a: &[f32]) {
    debug_assert_eq!(acc.len(), a.len());
    for (o, &x) in acc.iter_mut().zip(a.iter()) {
        *o -= x;
    }
}

/// `acc += alpha * a` (AXPY).
#[inline]
pub fn axpy(alpha: f32, a: &[f32], acc: &mut [f32]) {
    debug_assert_eq!(acc.len(), a.len());
    for (o, &x) in acc.iter_mut().zip(a.iter()) {
        *o += alpha * x;
    }
}

/// Scales a vector in place.
#[inline]
pub fn scale(a: &mut [f32], alpha: f32) {
    for x in a.iter_mut() {
        *x *= alpha;
    }
}

/// Normalizes `a` to unit length in place and returns the original norm.
///
/// If `a` is the zero vector (norm below `f32::EPSILON`), `a` is left
/// unchanged and `0.0` is returned; callers treat that case specially
/// (a data vector equal to its centroid carries no direction information).
#[inline]
pub fn normalize(a: &mut [f32]) -> f32 {
    let n = norm(a);
    if n > f32::EPSILON {
        scale(a, 1.0 / n);
    }
    n
}

/// Index of the minimum value; ties resolve to the lowest index.
///
/// Returns `None` on an empty slice.
#[inline]
pub fn argmin(values: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &v) in values.iter().enumerate() {
        match best {
            Some((_, bv)) if bv <= v => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Minimum and maximum of a non-empty slice.
#[inline]
pub fn min_max(values: &[f32]) -> (f32, f32) {
    assert!(!values.is_empty(), "min_max of empty slice");
    let mut lo = values[0];
    let mut hi = values[0];
    for &v in &values[1..] {
        if v < lo {
            lo = v;
        }
        if v > hi {
            hi = v;
        }
    }
    (lo, hi)
}

/// Mean of a slice, in `f64`.
#[inline]
pub fn mean(values: &[f32]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dot(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    #[test]
    fn dot_matches_naive_on_odd_lengths() {
        for len in [0usize, 1, 3, 4, 5, 7, 8, 9, 17, 64, 65] {
            let a: Vec<f32> = (0..len).map(|i| (i as f32).sin()).collect();
            let b: Vec<f32> = (0..len).map(|i| (i as f32 * 0.7).cos()).collect();
            let got = dot(&a, &b);
            let want = naive_dot(&a, &b);
            assert!(
                (got - want).abs() <= 1e-4 * (1.0 + want.abs()),
                "len={len}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn l2_sq_matches_expansion() {
        let a = [1.0f32, 2.0, 3.0, 4.0, 5.0];
        let b = [0.5f32, -1.0, 2.0, 4.0, 10.0];
        let direct = l2_sq(&a, &b);
        let expanded = dot(&a, &a) + dot(&b, &b) - 2.0 * dot(&a, &b);
        assert!((direct - expanded).abs() < 1e-4);
    }

    #[test]
    fn normalize_produces_unit_vector_and_returns_norm() {
        let mut v = vec![3.0f32, 4.0];
        let n = normalize(&mut v);
        assert!((n - 5.0).abs() < 1e-6);
        assert!((norm(&v) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn normalize_zero_vector_is_a_noop() {
        let mut v = vec![0.0f32; 8];
        let n = normalize(&mut v);
        assert_eq!(n, 0.0);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn argmin_picks_first_of_ties() {
        assert_eq!(argmin(&[3.0, 1.0, 1.0, 2.0]), Some(1));
        assert_eq!(argmin(&[]), None);
    }

    #[test]
    fn min_max_on_mixed_signs() {
        assert_eq!(min_max(&[0.0, -2.0, 5.0, 1.0]), (-2.0, 5.0));
    }

    #[test]
    fn axpy_and_sub_are_consistent() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [4.0f32, 5.0, 6.0];
        let mut out = [0.0f32; 3];
        sub(&b, &a, &mut out);
        let mut acc = a;
        axpy(1.0, &out, &mut acc);
        assert_eq!(acc, b);
    }

    #[test]
    fn l1_norm_matches_manual_sum() {
        assert_eq!(l1_norm_f64(&[-1.0, 2.0, -3.0]), 6.0);
    }
}
