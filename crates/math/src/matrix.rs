//! A small row-major dense matrix used for rotations and the OPQ
//! Procrustes step.
//!
//! The matrices in this workspace are at most `D × D` with `D ≤ 4096`
//! (rotation matrices, covariance-like products), so a simple cache-blocked
//! `ikj` GEMM is sufficient; no external BLAS is used.

use crate::vecs;

/// Row-major `rows × cols` matrix of `f32`.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The underlying row-major buffer, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// `self · x` for a column vector `x`; writes into `out`.
    ///
    /// # Panics
    /// Panics if dimensions disagree.
    pub fn matvec(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "matvec: x length");
        assert_eq!(out.len(), self.rows, "matvec: out length");
        for (o, i) in out.iter_mut().zip(0..self.rows) {
            *o = vecs::dot(self.row(i), x);
        }
    }

    /// `selfᵀ · x`; writes into `out`. Used to apply the inverse of an
    /// orthogonal matrix without materializing the transpose.
    pub fn matvec_t(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.rows, "matvec_t: x length");
        assert_eq!(out.len(), self.cols, "matvec_t: out length");
        out.fill(0.0);
        for (i, &xi) in x.iter().enumerate() {
            if xi != 0.0 {
                vecs::axpy(xi, self.row(i), out);
            }
        }
    }

    /// Matrix product `self · other` with a cache-blocked `ikj` loop order.
    ///
    /// # Panics
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul: inner dimensions");
        let mut out = Matrix::zeros(self.rows, other.cols);
        const BLOCK: usize = 64;
        for kb in (0..self.cols).step_by(BLOCK) {
            let kend = (kb + BLOCK).min(self.cols);
            for i in 0..self.rows {
                let arow = self.row(i);
                let orow_range = i * other.cols..(i + 1) * other.cols;
                let orow = &mut out.data[orow_range];
                for (k, &a) in arow.iter().enumerate().take(kend).skip(kb) {
                    if a != 0.0 {
                        vecs::axpy(a, other.row(k), orow);
                    }
                }
            }
        }
        out
    }

    /// `selfᵀ · other` without materializing the transpose.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_tn: inner dimensions");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let arow = self.row(r);
            let brow = other.row(r);
            for (i, &a) in arow.iter().enumerate() {
                if a != 0.0 {
                    let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                    vecs::axpy(a, brow, orow);
                }
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|&x| x as f64 * x as f64)
            .sum::<f64>()
            .sqrt()
    }

    /// Maximum absolute deviation of `selfᵀ·self` from the identity —
    /// a cheap orthogonality check used in tests and debug assertions.
    pub fn orthogonality_defect(&self) -> f64 {
        assert_eq!(self.rows, self.cols, "orthogonality is for square matrices");
        let gram = self.matmul_tn(self);
        let mut worst = 0.0f64;
        for i in 0..gram.rows {
            for j in 0..gram.cols {
                let want = if i == j { 1.0 } else { 0.0 };
                let dev = (gram[(i, j)] as f64 - want).abs();
                if dev > worst {
                    worst = dev;
                }
            }
        }
        worst
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f32 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f32 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_matmul_neutral() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let i2 = Matrix::identity(2);
        let i3 = Matrix::identity(3);
        assert_eq!(i2.matmul(&a), a);
        assert_eq!(a.matmul(&i3), a);
    }

    #[test]
    fn matmul_matches_hand_computed_product() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose_product() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![0.5, -1.0, 2.0, 0.0, 1.0, 1.0]);
        let fast = a.matmul_tn(&b);
        let slow = a.transposed().matmul(&b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matvec_and_matvec_t_are_transposes_of_each_other() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 0.0, 2.0, -1.0, 3.0, 1.0]);
        let x = [1.0f32, 2.0];
        let y = [1.0f32, 0.5, -1.0];
        // ⟨A y, x⟩ must equal ⟨y, Aᵀ x⟩.
        let mut ay = [0.0f32; 2];
        a.matvec(&y, &mut ay);
        let mut atx = [0.0f32; 3];
        a.matvec_t(&x, &mut atx);
        let lhs = vecs::dot(&ay, &x);
        let rhs = vecs::dot(&y, &atx);
        assert!((lhs - rhs).abs() < 1e-5);
    }

    #[test]
    fn transpose_is_involutive() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transposed().transposed(), a);
    }

    #[test]
    fn orthogonality_defect_of_identity_is_zero() {
        assert_eq!(Matrix::identity(8).orthogonality_defect(), 0.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_rejects_mismatched_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
