//! Special functions for the paper's closed-form expectations.
//!
//! Appendix B of the paper gives `E[⟨ō,o⟩] = √(D/π)·2Γ(D/2) / ((D−1)Γ((D−1)/2))`
//! and the density of a single coordinate of a uniform point on the sphere,
//! `p_D(x) = Γ(D/2)/(√π·Γ((D−1)/2)) · (1−x²)^{(D−3)/2}`. Both are needed by
//! the Figure 1/8 verification experiments and by tests.

/// Natural log of the Gamma function (Lanczos approximation, g=7, n=9).
///
/// Accurate to ~1e-13 relative error for positive arguments, which is far
/// beyond what the verification experiments need.
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps the approximation in its valid range.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Closed-form `E[⟨ō,o⟩]` from Appendix B.1 (Eq. 36):
/// `√(D/π) · 2Γ(D/2) / ((D−1)·Γ((D−1)/2))`.
///
/// The paper observes this lies in [0.798, 0.800] for D ∈ [10², 10⁶].
pub fn expected_code_alignment(d: usize) -> f64 {
    assert!(d >= 2, "dimension must be at least 2");
    let d = d as f64;
    let log_ratio = ln_gamma(d / 2.0) - ln_gamma((d - 1.0) / 2.0);
    (d / std::f64::consts::PI).sqrt() * 2.0 / (d - 1.0) * log_ratio.exp()
}

/// Density `p_D(x)` of one coordinate of a uniform point on the unit sphere
/// `S^{D−1}` (Lemma B.1): `Γ(D/2)/(√π Γ((D−1)/2)) (1−x²)^{(D−3)/2}` on [−1,1].
pub fn sphere_coordinate_density(d: usize, x: f64) -> f64 {
    assert!(d >= 2, "dimension must be at least 2");
    if !(-1.0..=1.0).contains(&x) {
        return 0.0;
    }
    let df = d as f64;
    let log_norm =
        ln_gamma(df / 2.0) - ln_gamma((df - 1.0) / 2.0) - 0.5 * std::f64::consts::PI.ln();
    let base = 1.0 - x * x;
    if base <= 0.0 {
        // Endpoint: density is 0 for D > 3, +inf for D = 2; report 0.
        return if d > 3 { 0.0 } else { f64::INFINITY };
    }
    (log_norm + (df - 3.0) / 2.0 * base.ln()).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n−1)!
        let facts = [1.0f64, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (n, &f) in facts.iter().enumerate() {
            let got = ln_gamma((n + 1) as f64).exp();
            assert!((got - f).abs() < 1e-8 * f.max(1.0), "Γ({}) = {got}", n + 1);
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π.
        let got = ln_gamma(0.5).exp();
        assert!((got - std::f64::consts::PI.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn expected_alignment_is_near_0_8_for_paper_range() {
        for d in [100usize, 420, 960, 4096, 100_000] {
            let e = expected_code_alignment(d);
            assert!((0.7978..=0.8005).contains(&e), "D={d}: E[⟨ō,o⟩]={e}");
        }
    }

    #[test]
    fn expected_alignment_matches_sqrt_2_over_pi_asymptote() {
        // As D→∞ the expectation tends to √(2/π) ≈ 0.7979.
        let limit = (2.0 / std::f64::consts::PI).sqrt();
        let e = expected_code_alignment(1_000_000);
        assert!((e - limit).abs() < 1e-4);
    }

    #[test]
    fn density_integrates_to_one() {
        // Trapezoidal integration over [−1, 1].
        for d in [4usize, 32, 128] {
            let steps = 20_000;
            let mut acc = 0.0;
            for i in 0..steps {
                let x0 = -1.0 + 2.0 * i as f64 / steps as f64;
                let x1 = -1.0 + 2.0 * (i + 1) as f64 / steps as f64;
                acc += 0.5
                    * (sphere_coordinate_density(d, x0) + sphere_coordinate_density(d, x1))
                    * (x1 - x0);
            }
            assert!((acc - 1.0).abs() < 1e-3, "D={d}: ∫p={acc}");
        }
    }

    #[test]
    fn density_is_symmetric_and_zero_outside_support() {
        assert_eq!(sphere_coordinate_density(64, 1.5), 0.0);
        let a = sphere_coordinate_density(64, 0.3);
        let b = sphere_coordinate_density(64, -0.3);
        assert!((a - b).abs() < 1e-12);
    }
}
