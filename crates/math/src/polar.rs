//! Polar decomposition via Higham's scaled Newton iteration, plus the
//! Gauss–Jordan inverse it relies on.
//!
//! The OPQ baseline needs the orthogonal Procrustes solution
//! `R* = argmin_{R orthogonal} ‖X − R·B‖_F`, which is the orthogonal polar
//! factor of `X·Bᵀ`. Rather than a full SVD, we compute the polar factor
//! directly with the Newton iteration `Y ← (γY + (γY)⁻ᵀ)/2`, which converges
//! quadratically for non-singular inputs (Higham 1986).

use crate::matrix::Matrix;

/// Inverts a square matrix with Gauss–Jordan elimination and partial
/// pivoting. Returns `None` if the matrix is numerically singular.
pub fn invert(m: &Matrix) -> Option<Matrix> {
    assert_eq!(m.rows(), m.cols(), "invert: matrix must be square");
    let n = m.rows();
    // Work in f64: the Newton iteration amplifies f32 round-off on
    // ill-conditioned correlation matrices.
    let mut a: Vec<f64> = m.as_slice().iter().map(|&x| x as f64).collect();
    let mut inv: Vec<f64> = vec![0.0; n * n];
    for i in 0..n {
        inv[i * n + i] = 1.0;
    }
    for col in 0..n {
        // Partial pivot.
        let mut pivot_row = col;
        let mut pivot_val = a[col * n + col].abs();
        for r in (col + 1)..n {
            let v = a[r * n + col].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        if pivot_val < 1e-12 {
            return None;
        }
        if pivot_row != col {
            for j in 0..n {
                a.swap(col * n + j, pivot_row * n + j);
                inv.swap(col * n + j, pivot_row * n + j);
            }
        }
        let pivot = a[col * n + col];
        let inv_pivot = 1.0 / pivot;
        for j in 0..n {
            a[col * n + j] *= inv_pivot;
            inv[col * n + j] *= inv_pivot;
        }
        // Elimination against a copy of the pivot rows lets the inner
        // loops borrow disjoint slices and auto-vectorize — this is the
        // O(n³) kernel behind the OPQ Procrustes step.
        let a_piv: Vec<f64> = a[col * n..(col + 1) * n].to_vec();
        let inv_piv: Vec<f64> = inv[col * n..(col + 1) * n].to_vec();
        for r in 0..n {
            if r == col {
                continue;
            }
            let factor = a[r * n + col];
            if factor == 0.0 {
                continue;
            }
            let a_row = &mut a[r * n..(r + 1) * n];
            for (x, &p) in a_row.iter_mut().zip(a_piv.iter()) {
                *x -= factor * p;
            }
            let inv_row = &mut inv[r * n..(r + 1) * n];
            for (x, &p) in inv_row.iter_mut().zip(inv_piv.iter()) {
                *x -= factor * p;
            }
        }
    }
    Some(Matrix::from_vec(
        n,
        n,
        inv.into_iter().map(|x| x as f32).collect(),
    ))
}

/// Computes the orthogonal polar factor `U` of `m = U·H` (with `H`
/// symmetric positive semi-definite) via scaled Newton iteration.
///
/// Returns `None` if `m` is numerically singular (no unique polar factor) or
/// the iteration fails to converge in `max_iters` steps.
pub fn orthogonal_polar_factor(m: &Matrix, max_iters: usize) -> Option<Matrix> {
    assert_eq!(m.rows(), m.cols(), "polar factor: matrix must be square");
    let n = m.rows();
    let mut y = m.clone();
    for _ in 0..max_iters {
        let y_inv = invert(&y)?;
        let y_inv_t = y_inv.transposed();
        // Frobenius-norm scaling accelerates early iterations.
        let fy = y.frobenius_norm();
        let fyi = y_inv_t.frobenius_norm();
        if fy == 0.0 || fyi == 0.0 {
            return None;
        }
        let gamma = (fyi / fy).sqrt() as f32;
        let mut next = Matrix::zeros(n, n);
        let mut delta = 0.0f64;
        for i in 0..n {
            for j in 0..n {
                let v = 0.5 * (gamma * y[(i, j)] + y_inv_t[(i, j)] / gamma);
                delta = delta.max((v as f64 - y[(i, j)] as f64).abs());
                next[(i, j)] = v;
            }
        }
        y = next;
        if delta < 1e-6 {
            return Some(y);
        }
    }
    // Accept the result if it is orthogonal enough even without the
    // per-step delta falling below the threshold.
    if y.orthogonality_defect() < 1e-3 {
        Some(y)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orthogonal::random_orthogonal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn invert_identity_is_identity() {
        let i = Matrix::identity(5);
        assert_eq!(invert(&i).unwrap(), i);
    }

    #[test]
    fn invert_times_original_is_identity() {
        let m = Matrix::from_vec(3, 3, vec![2.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0]);
        let inv = invert(&m).unwrap();
        let prod = m.matmul(&inv);
        for i in 0..3 {
            for j in 0..3 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - want).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn invert_detects_singular_matrix() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(invert(&m).is_none());
    }

    #[test]
    fn polar_factor_of_orthogonal_matrix_is_itself() {
        let mut rng = StdRng::seed_from_u64(17);
        let p = random_orthogonal(&mut rng, 12);
        let u = orthogonal_polar_factor(&p, 30).unwrap();
        for (a, b) in u.as_slice().iter().zip(p.as_slice()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn polar_factor_recovers_rotation_from_scaled_rotation() {
        // m = 3.5 * P has polar decomposition U = P, H = 3.5 I.
        let mut rng = StdRng::seed_from_u64(23);
        let p = random_orthogonal(&mut rng, 10);
        let mut m = p.clone();
        for x in m.as_mut_slice() {
            *x *= 3.5;
        }
        let u = orthogonal_polar_factor(&m, 40).unwrap();
        for (a, b) in u.as_slice().iter().zip(p.as_slice()) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn polar_factor_is_orthogonal_for_generic_input() {
        let mut rng = StdRng::seed_from_u64(29);
        let dim = 16;
        let g = crate::rng::standard_normal_vec(&mut rng, dim * dim);
        let m = Matrix::from_vec(dim, dim, g);
        let u = orthogonal_polar_factor(&m, 60).unwrap();
        assert!(u.orthogonality_defect() < 1e-3);
    }

    #[test]
    fn polar_factor_rejects_singular_input() {
        let m = Matrix::zeros(4, 4);
        assert!(orthogonal_polar_factor(&m, 20).is_none());
    }
}
