//! Property-based tests for KMeans invariants.

use proptest::prelude::*;
use rabitq_kmeans::{train, KMeans, KMeansConfig};
use rabitq_math::vecs;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_data(n: usize, dim: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    rabitq_math::rng::standard_normal_vec(&mut rng, n * dim)
}

fn fit(n: usize, dim: usize, k: usize, seed: u64) -> (Vec<f32>, KMeans) {
    let data = random_data(n, dim, seed);
    let model = train(&data, dim, &KMeansConfig::new(k));
    (data, model)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn assignment_is_nearest(seed in 0u64..300, k in 2usize..8) {
        let (data, model) = fit(60, 6, k, seed);
        for row in data.chunks_exact(6) {
            let (c, d) = model.assign(row);
            for other in 0..model.k() {
                prop_assert!(vecs::l2_sq(model.centroid(other), row) >= d - 1e-5);
            }
            prop_assert!(c < model.k());
        }
    }

    #[test]
    fn top_n_is_sorted_prefix_of_full_ranking(seed in 0u64..300, n_probe in 1usize..6) {
        let (data, model) = fit(50, 5, 6, seed);
        let query = &data[..5];
        let top = model.assign_top_n(query, n_probe);
        prop_assert_eq!(top.len(), n_probe.min(model.k()));
        prop_assert!(top.windows(2).all(|w| w[0].1 <= w[1].1));
        // The full ranking's best must equal top[0].
        let mut all: Vec<(usize, f32)> = (0..model.k())
            .map(|c| (c, vecs::l2_sq(model.centroid(c), query)))
            .collect();
        all.sort_by(|a, b| a.1.total_cmp(&b.1));
        prop_assert_eq!(top[0].1, all[0].1);
    }

    #[test]
    fn every_cluster_is_nonempty_on_spread_data(seed in 0u64..200) {
        let (data, model) = fit(80, 4, 5, seed);
        let labels = model.assign_all(&data, 1);
        let mut counts = vec![0usize; model.k()];
        for &l in &labels {
            counts[l as usize] += 1;
        }
        // Empty-cluster repair guarantees nonempty training clusters; on
        // the same data the final assignment should also hit every
        // centroid.
        prop_assert!(counts.iter().all(|&c| c > 0), "counts {:?}", counts);
    }

    #[test]
    fn objective_bounded_by_total_variance(seed in 0u64..200, k in 1usize..6) {
        let (data, model) = fit(70, 4, k, seed);
        // Mean squared distance to the global mean = total variance; the
        // KMeans objective with k ≥ 1 can never exceed it (k = 1 attains
        // exactly it).
        let n = 70usize;
        let mut mean = vec![0.0f32; 4];
        for row in data.chunks_exact(4) {
            vecs::add_assign(&mut mean, row);
        }
        vecs::scale(&mut mean, 1.0 / n as f32);
        let total_var: f64 = data
            .chunks_exact(4)
            .map(|row| vecs::l2_sq(row, &mean) as f64)
            .sum::<f64>() / n as f64;
        prop_assert!(model.objective <= total_var * 1.01 + 1e-6,
            "objective {} vs variance {}", model.objective, total_var);
    }
}
