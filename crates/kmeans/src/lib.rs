//! KMeans clustering for the RaBitQ workspace.
//!
//! Two call sites drive the design:
//!
//! * the **IVF coarse quantizer** (Section 4 of the paper): `K ≈ 4√N`
//!   clusters over up to millions of vectors — so assignment is threaded and
//!   training can run on a subsample, exactly as Faiss does;
//! * the **PQ sub-codebook trainer**: 16 or 256 clusters over short
//!   sub-vectors, where exactness of the Lloyd loop matters more than speed.
//!
//! The implementation is plain k-means++ seeding plus Lloyd iterations with
//! empty-cluster repair (an empty cluster is re-seeded from the point
//! farthest from its current centroid, Faiss-style).

use rabitq_math::vecs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`train`].
#[derive(Clone, Debug)]
pub struct KMeansConfig {
    /// Number of clusters `K`.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// RNG seed (k-means++ seeding and empty-cluster repair).
    pub seed: u64,
    /// If set, train on at most this many points sampled without
    /// replacement; the final model still assigns all points.
    pub training_sample: Option<usize>,
    /// Number of worker threads for the assignment step. `1` disables
    /// threading. Values above the machine's parallelism are clamped by the
    /// OS scheduler, not by us.
    pub threads: usize,
    /// Convergence threshold on the relative objective improvement.
    pub tol: f64,
}

impl KMeansConfig {
    /// A reasonable default: 25 Lloyd iterations, single thread.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            max_iters: 25,
            seed: 0x5EED,
            training_sample: None,
            threads: 1,
            tol: 1e-4,
        }
    }
}

/// A trained KMeans model: `k` centroids of dimension `dim`.
#[derive(Clone, Debug)]
pub struct KMeans {
    centroids: Vec<f32>,
    dim: usize,
    k: usize,
    /// Final training objective (mean squared distance to assigned centroid).
    pub objective: f64,
    /// Number of Lloyd iterations actually run.
    pub iterations: usize,
}

impl KMeans {
    /// Reconstructs a model from stored centroids (index deserialization).
    ///
    /// # Panics
    /// Panics if `centroids.len()` is not a positive multiple of `dim`.
    pub fn from_centroids(centroids: Vec<f32>, dim: usize) -> Self {
        assert!(dim > 0, "dim must be positive");
        assert!(
            !centroids.is_empty() && centroids.len().is_multiple_of(dim),
            "centroid buffer shape"
        );
        let k = centroids.len() / dim;
        Self {
            centroids,
            dim,
            k,
            objective: f64::NAN,
            iterations: 0,
        }
    }

    /// Number of clusters.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Vector dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Centroid `c` as a slice.
    #[inline]
    pub fn centroid(&self, c: usize) -> &[f32] {
        &self.centroids[c * self.dim..(c + 1) * self.dim]
    }

    /// All centroids as a flat `k × dim` row-major buffer.
    #[inline]
    pub fn centroids(&self) -> &[f32] {
        &self.centroids
    }

    /// Index of the nearest centroid to `x` and the squared distance to it.
    pub fn assign(&self, x: &[f32]) -> (usize, f32) {
        debug_assert_eq!(x.len(), self.dim);
        let mut best = 0usize;
        let mut best_d = f32::INFINITY;
        for c in 0..self.k {
            let d = vecs::l2_sq(self.centroid(c), x);
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        (best, best_d)
    }

    /// Indices of the `n` nearest centroids to `x`, nearest first.
    ///
    /// Used by IVF to pick the `nprobe` buckets for a query.
    pub fn assign_top_n(&self, x: &[f32], n: usize) -> Vec<(usize, f32)> {
        let mut dists = Vec::new();
        self.assign_top_n_into(x, n, &mut dists);
        dists
    }

    /// [`KMeans::assign_top_n`] into a reused buffer (`n ≥ 1`). At steady
    /// state — a buffer whose capacity has reached `k` — the call performs
    /// no heap allocation; this is the probe-selection step of the
    /// allocation-free IVF query path.
    pub fn assign_top_n_into(&self, x: &[f32], n: usize, out: &mut Vec<(usize, f32)>) {
        out.clear();
        out.extend((0..self.k).map(|c| (c, vecs::l2_sq(self.centroid(c), x))));
        let n = n.min(self.k);
        out.select_nth_unstable_by(n - 1, |a, b| a.1.total_cmp(&b.1));
        out.truncate(n);
        out.sort_unstable_by(|a, b| a.1.total_cmp(&b.1));
    }

    /// Assigns every row of `data` (flat `n × dim`) to its nearest centroid,
    /// using up to `threads` worker threads.
    pub fn assign_all(&self, data: &[f32], threads: usize) -> Vec<u32> {
        let n = data.len() / self.dim;
        let mut out = vec![0u32; n];
        if n == 0 {
            return out;
        }
        let threads = threads.max(1).min(n);
        let chunk_rows = n.div_ceil(threads);
        std::thread::scope(|scope| {
            let mut remaining: &mut [u32] = &mut out;
            for t in 0..threads {
                let start = t * chunk_rows;
                if start >= n {
                    break;
                }
                let rows = chunk_rows.min(n - start);
                let (mine, rest) = remaining.split_at_mut(rows);
                remaining = rest;
                let data_chunk = &data[start * self.dim..(start + rows) * self.dim];
                scope.spawn(move || {
                    for (row, slot) in data_chunk.chunks_exact(self.dim).zip(mine.iter_mut()) {
                        *slot = self.assign(row).0 as u32;
                    }
                });
            }
        });
        out
    }
}

/// Trains a KMeans model over `data` (flat `n × dim` row-major).
///
/// # Panics
/// Panics if `data` is empty, `dim == 0`, `k == 0`, or `data.len()` is not a
/// multiple of `dim`.
pub fn train(data: &[f32], dim: usize, config: &KMeansConfig) -> KMeans {
    assert!(dim > 0, "dim must be positive");
    assert!(config.k > 0, "k must be positive");
    assert!(
        data.len().is_multiple_of(dim),
        "data length {} is not a multiple of dim {dim}",
        data.len()
    );
    let n = data.len() / dim;
    assert!(n > 0, "cannot train on an empty dataset");

    let mut rng = StdRng::seed_from_u64(config.seed);

    // Optionally subsample the training set (without replacement, partial
    // Fisher–Yates over an index array).
    let sample_indices: Vec<usize> = match config.training_sample {
        Some(cap) if cap < n => {
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..cap {
                let j = rng.gen_range(i..n);
                idx.swap(i, j);
            }
            idx.truncate(cap);
            idx
        }
        _ => (0..n).collect(),
    };
    let tn = sample_indices.len();
    let row =
        |i: usize| -> &[f32] { &data[sample_indices[i] * dim..sample_indices[i] * dim + dim] };

    let k = config.k.min(tn);
    let mut centroids = kmeanspp_seed(&sample_indices, data, dim, k, &mut rng);

    let mut assignment = vec![0u32; tn];
    let mut objective = f64::INFINITY;
    let mut iterations = 0usize;
    let mut sums = vec![0.0f64; k * dim];
    let mut counts = vec![0usize; k];

    for iter in 0..config.max_iters {
        iterations = iter + 1;
        // Assignment step (threaded over the training sample).
        let model = KMeans {
            centroids: centroids.clone(),
            dim,
            k,
            objective: 0.0,
            iterations: 0,
        };
        let mut new_objective = 0.0f64;
        if config.threads <= 1 || tn < 1024 {
            for (i, slot) in assignment.iter_mut().enumerate().take(tn) {
                let (c, d) = model.assign(row(i));
                *slot = c as u32;
                new_objective += d as f64;
            }
        } else {
            let threads = config.threads.min(tn);
            let chunk = tn.div_ceil(threads);
            let partials: Vec<f64> = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                let mut remaining: &mut [u32] = &mut assignment;
                for t in 0..threads {
                    let start = t * chunk;
                    if start >= tn {
                        break;
                    }
                    let rows = chunk.min(tn - start);
                    let (mine, rest) = remaining.split_at_mut(rows);
                    remaining = rest;
                    let model_ref = &model;
                    let sample_ref = &sample_indices;
                    handles.push(scope.spawn(move || {
                        let mut local = 0.0f64;
                        for (off, slot) in mine.iter_mut().enumerate() {
                            let gi = sample_ref[start + off];
                            let (c, d) = model_ref.assign(&data[gi * dim..gi * dim + dim]);
                            *slot = c as u32;
                            local += d as f64;
                        }
                        local
                    }));
                }
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            new_objective = partials.into_iter().sum();
        }
        new_objective /= tn as f64;

        // Update step.
        sums.fill(0.0);
        counts.fill(0);
        for (i, &a) in assignment.iter().enumerate().take(tn) {
            let c = a as usize;
            counts[c] += 1;
            let r = row(i);
            let s = &mut sums[c * dim..(c + 1) * dim];
            for (acc, &x) in s.iter_mut().zip(r.iter()) {
                *acc += x as f64;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Empty-cluster repair: re-seed from the point farthest from
                // its assigned centroid.
                let mut worst = 0usize;
                let mut worst_d = -1.0f32;
                for (i, &a) in assignment.iter().enumerate().take(tn) {
                    let cur = a as usize;
                    let d = vecs::l2_sq(&centroids[cur * dim..(cur + 1) * dim], row(i));
                    if d > worst_d {
                        worst_d = d;
                        worst = i;
                    }
                }
                centroids[c * dim..(c + 1) * dim].copy_from_slice(row(worst));
                assignment[worst] = c as u32;
            } else {
                let inv = 1.0 / counts[c] as f64;
                for (dst, &s) in centroids[c * dim..(c + 1) * dim]
                    .iter_mut()
                    .zip(sums[c * dim..(c + 1) * dim].iter())
                {
                    *dst = (s * inv) as f32;
                }
            }
        }

        let improved = objective - new_objective;
        objective = new_objective;
        if improved >= 0.0 && improved < config.tol * objective.max(1e-30) {
            break;
        }
    }

    KMeans {
        centroids,
        dim,
        k,
        objective,
        iterations,
    }
}

/// k-means++ seeding (Arthur & Vassilvitskii 2007) over the sampled rows.
fn kmeanspp_seed(
    sample: &[usize],
    data: &[f32],
    dim: usize,
    k: usize,
    rng: &mut StdRng,
) -> Vec<f32> {
    let tn = sample.len();
    let row = |i: usize| -> &[f32] { &data[sample[i] * dim..sample[i] * dim + dim] };
    let mut centroids = vec![0.0f32; k * dim];

    let first = rng.gen_range(0..tn);
    centroids[..dim].copy_from_slice(row(first));

    // d2[i] = squared distance from point i to its closest chosen centroid.
    let mut d2: Vec<f64> = (0..tn)
        .map(|i| vecs::l2_sq(&centroids[..dim], row(i)) as f64)
        .collect();

    for c in 1..k {
        let total: f64 = d2.iter().sum();
        let chosen = if total <= 0.0 {
            // All points coincide with chosen centroids; pick uniformly.
            rng.gen_range(0..tn)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut pick = tn - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    pick = i;
                    break;
                }
                target -= w;
            }
            pick
        };
        let dst = &mut centroids[c * dim..(c + 1) * dim];
        dst.copy_from_slice(row(chosen));
        // Refresh d2 against the newly chosen centroid.
        let new_c = centroids[c * dim..(c + 1) * dim].to_vec();
        for (i, slot) in d2.iter_mut().enumerate() {
            let d = vecs::l2_sq(&new_c, row(i)) as f64;
            if d < *slot {
                *slot = d;
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated blobs in 2-D.
    fn blobs() -> (Vec<f32>, usize) {
        let mut data = Vec::new();
        let mut rng = StdRng::seed_from_u64(1);
        let centers = [(-10.0f32, 0.0f32), (10.0, 0.0), (0.0, 17.0)];
        for &(cx, cy) in &centers {
            for _ in 0..50 {
                data.push(cx + rng.gen_range(-0.5..0.5));
                data.push(cy + rng.gen_range(-0.5..0.5));
            }
        }
        (data, 2)
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let (data, dim) = blobs();
        let model = train(&data, dim, &KMeansConfig::new(3));
        // Each blob's points must map to a single cluster, and the three
        // blobs to three distinct clusters.
        let labels = model.assign_all(&data, 1);
        for blob in 0..3 {
            let first = labels[blob * 50];
            assert!(
                labels[blob * 50..(blob + 1) * 50]
                    .iter()
                    .all(|&l| l == first),
                "blob {blob} split across clusters"
            );
        }
        let mut distinct: Vec<u32> = labels.iter().copied().collect();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 3);
        // Objective should be tiny relative to blob separation.
        assert!(model.objective < 1.0, "objective {}", model.objective);
    }

    #[test]
    fn assign_returns_truly_nearest_centroid() {
        let (data, dim) = blobs();
        let model = train(&data, dim, &KMeansConfig::new(3));
        for i in 0..data.len() / dim {
            let x = &data[i * dim..(i + 1) * dim];
            let (c, d) = model.assign(x);
            for other in 0..model.k() {
                assert!(
                    vecs::l2_sq(model.centroid(other), x) + 1e-6 >= d,
                    "centroid {other} beats reported nearest {c}"
                );
            }
        }
    }

    #[test]
    fn assign_top_n_is_sorted_and_consistent_with_assign() {
        let (data, dim) = blobs();
        let model = train(&data, dim, &KMeansConfig::new(3));
        let x = &data[..dim];
        let top = model.assign_top_n(x, 3);
        assert_eq!(top.len(), 3);
        assert!(top.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(top[0].0, model.assign(x).0);
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let data = vec![0.0f32, 0.0, 1.0, 1.0];
        let model = train(&data, 2, &KMeansConfig::new(16));
        assert_eq!(model.k(), 2);
    }

    #[test]
    fn single_cluster_centroid_is_the_mean() {
        let data = vec![1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0];
        let model = train(&data, 2, &KMeansConfig::new(1));
        assert!((model.centroid(0)[0] - 3.0).abs() < 1e-5);
        assert!((model.centroid(0)[1] - 4.0).abs() < 1e-5);
    }

    #[test]
    fn threaded_assignment_matches_single_threaded() {
        let (data, dim) = blobs();
        let model = train(&data, dim, &KMeansConfig::new(3));
        let single = model.assign_all(&data, 1);
        let multi = model.assign_all(&data, 4);
        assert_eq!(single, multi);
    }

    #[test]
    fn training_on_sample_still_produces_k_centroids() {
        let (data, dim) = blobs();
        let mut cfg = KMeansConfig::new(3);
        cfg.training_sample = Some(60);
        let model = train(&data, dim, &cfg);
        assert_eq!(model.k(), 3);
        assert_eq!(model.centroids().len(), 3 * dim);
    }

    #[test]
    fn duplicate_points_do_not_crash_seeding() {
        let data = vec![1.0f32; 2 * 40]; // 40 identical 2-D points
        let model = train(&data, 2, &KMeansConfig::new(4));
        assert_eq!(model.k(), 4);
        // All centroids must equal the single point.
        for c in 0..4 {
            assert!((model.centroid(c)[0] - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (data, dim) = blobs();
        let m1 = train(&data, dim, &KMeansConfig::new(3));
        let m2 = train(&data, dim, &KMeansConfig::new(3));
        assert_eq!(m1.centroids(), m2.centroids());
    }

    #[test]
    fn objective_decreases_with_more_clusters() {
        let (data, dim) = blobs();
        let m1 = train(&data, dim, &KMeansConfig::new(1));
        let m3 = train(&data, dim, &KMeansConfig::new(3));
        assert!(m3.objective < m1.objective);
    }
}
