//! # rabitq-graph — graph-based ANN search over RaBitQ codes
//!
//! The RaBitQ paper applies its quantizer to the IVF index and names the
//! combination with *graph-based* indexes as future work (Section 7); the
//! production systems that adopted RaBitQ (NGT-QG before it, Lucene and
//! Milvus after) pair the codes with a proximity graph. This crate is that
//! combination: an HNSW graph whose traversal ranks candidates by the
//! RaBitQ **single-code bitwise kernel** instead of full-precision
//! distances, followed by the paper's error-bound-based re-ranking.
//!
//! The pairing matters because graph search visits vertices *one after
//! another* along the greedy walk — candidates cannot be packed into
//! batches of 32, so PQ's fast-scan layout is unusable and PQ falls back
//! to cache-hostile LUT lookups. RaBitQ's single-code kernel (`B_q`
//! AND+popcount passes, Section 3.3.2) is the implementation the paper
//! builds precisely for this access pattern (Table 1), which is what makes
//! the graph combination practical.
//!
//! ## Search pipeline
//!
//! 1. The query is rotated, residualized against the index centroid and
//!    scalar-quantized **once** (Algorithm 2, lines 1–2).
//! 2. Greedy descent through the upper HNSW layers and the base-layer beam
//!    search both rank vertices by the unbiased estimator `⟨ō,q⟩/⟨ō,o⟩`.
//! 3. Every vertex the traversal estimated — not just the `ef` beam
//!    survivors, whose ordering 1-bit estimates cannot be trusted to get
//!    right — is a re-rank candidate under the Section 4 rule: a
//!    candidate is skipped iff its distance *lower bound* exceeds the
//!    current K-th best exact distance. No tuning parameter, unlike
//!    PQ-style fixed re-rank depths, and the bound keeps the exact
//!    computations to a small fraction of the visited set.
//!
//! ```
//! use rabitq_graph::{GraphRabitq, GraphRabitqConfig};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let (n, dim) = (400, 48);
//! let mut rng = StdRng::seed_from_u64(7);
//! let data = rabitq_math::rng::standard_normal_vec(&mut rng, n * dim);
//!
//! let index = GraphRabitq::build(&data, dim, GraphRabitqConfig::default());
//! let query = rabitq_math::rng::standard_normal_vec(&mut rng, dim);
//! let result = index.search(&query, 5, 64, &mut rng);
//! assert_eq!(result.neighbors.len(), 5);
//! assert!(result.neighbors.windows(2).all(|w| w[0].1 <= w[1].1));
//! ```

mod index;
mod persist;

pub use index::{
    GraphRabitq, GraphRabitqConfig, GraphRerank, GraphSearchResult, PreparedGraphQuery,
};
