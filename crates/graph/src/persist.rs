//! Versioned binary persistence for [`GraphRabitq`] — quantizer (including
//! the sampled rotation), codes, centroid and the full layer graph, so a
//! loaded index answers queries bit-identically to the one that was saved.

use crate::index::{GraphRabitq, GraphRerank};
use rabitq_core::persist::{
    invalid, read_f32_vec, read_header, read_u32_vec, read_u64, read_u8, read_usize,
    write_f32_slice, write_header, write_u32_slice, write_u64, write_u8, write_usize,
};
use rabitq_core::{CodeSet, Rabitq};
use rabitq_hnsw::{Hnsw, HnswConfig, HnswParts};
use std::io::{self, Read, Write};

const SECTION: &str = "graph-rabitq-v1";

impl GraphRabitq {
    /// Serializes the index to `w`.
    pub fn write<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write_header(w, SECTION)?;
        match self.rerank {
            GraphRerank::ErrorBound => write_u8(w, 0)?,
            GraphRerank::Top(n) => {
                write_u8(w, 1)?;
                write_usize(w, n)?;
            }
            GraphRerank::None => write_u8(w, 2)?,
        }
        self.quantizer.write(w)?;
        self.codes.write(w)?;
        write_f32_slice(w, &self.centroids)?;
        write_u32_slice(w, &self.assignments)?;

        let parts = self.graph.to_parts();
        write_usize(w, parts.dim)?;
        write_usize(w, parts.config.m)?;
        write_usize(w, parts.config.ef_construction)?;
        write_u64(w, parts.config.seed)?;
        write_f32_slice(w, &parts.data)?;
        write_u64(w, parts.entry as u64)?;
        write_usize(w, parts.top_layer)?;
        write_usize(w, parts.adjacency.len())?;
        for layers in &parts.adjacency {
            write_usize(w, layers.len())?;
            for nbrs in layers {
                write_u32_slice(w, nbrs)?;
            }
        }
        Ok(())
    }

    /// Deserializes an index written by [`GraphRabitq::write`].
    pub fn read<R: Read>(r: &mut R) -> io::Result<Self> {
        let section = read_header(r)?;
        if section != SECTION {
            return Err(invalid(format!("expected {SECTION}, found {section}")));
        }
        let rerank = match read_u8(r)? {
            0 => GraphRerank::ErrorBound,
            1 => GraphRerank::Top(read_usize(r)?),
            2 => GraphRerank::None,
            tag => return Err(invalid(format!("unknown rerank tag {tag}"))),
        };
        let quantizer = Rabitq::read(r)?;
        let codes = CodeSet::read(r)?;
        let centroids = read_f32_vec(r)?;
        let assignments = read_u32_vec(r)?;

        let dim = read_usize(r)?;
        let config = HnswConfig {
            m: read_usize(r)?,
            ef_construction: read_usize(r)?,
            seed: read_u64(r)?,
        };
        let data = read_f32_vec(r)?;
        let entry = read_u64(r)? as u32;
        let top_layer = read_usize(r)?;
        let n_nodes = read_usize(r)?;
        if n_nodes > data.len().max(1) {
            return Err(invalid(format!("implausible node count {n_nodes}")));
        }
        let mut adjacency = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let n_layers = read_usize(r)?;
            if n_layers > 64 {
                return Err(invalid(format!("implausible layer count {n_layers}")));
            }
            let mut layers = Vec::with_capacity(n_layers);
            for _ in 0..n_layers {
                layers.push(read_u32_vec(r)?);
            }
            adjacency.push(layers);
        }
        let graph = Hnsw::from_parts(HnswParts {
            dim,
            config,
            data,
            adjacency,
            entry,
            top_layer,
        })
        .map_err(invalid)?;

        if codes.len() != graph.len() {
            return Err(invalid(format!(
                "{} codes for {} graph nodes",
                codes.len(),
                graph.len()
            )));
        }
        if quantizer.dim() != dim || centroids.is_empty() || centroids.len() % dim != 0 {
            return Err(invalid("dimensionality mismatch across sections"));
        }
        let n_centroids = centroids.len() / dim;
        if assignments.len() != graph.len() {
            return Err(invalid(format!(
                "{} assignments for {} graph nodes",
                assignments.len(),
                graph.len()
            )));
        }
        if assignments.iter().any(|&a| a as usize >= n_centroids) {
            return Err(invalid("assignment points past the centroid table"));
        }
        // `P⁻¹c` is derived state; recompute it from the loaded rotation.
        let mut rotated_centroids = Vec::with_capacity(n_centroids * quantizer.padded_dim());
        for row in centroids.chunks_exact(dim) {
            rotated_centroids.extend_from_slice(&quantizer.rotate(row));
        }
        Ok(Self {
            graph,
            quantizer,
            codes,
            centroids,
            rotated_centroids,
            assignments,
            rerank,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::GraphRabitqConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_trip_preserves_results() {
        let (n, dim) = (300, 32);
        let mut rng = StdRng::seed_from_u64(20);
        let data = rabitq_math::rng::standard_normal_vec(&mut rng, n * dim);
        let index = GraphRabitq::build(&data, dim, GraphRabitqConfig::default());

        let mut buf = Vec::new();
        index.write(&mut buf).unwrap();
        let loaded = GraphRabitq::read(&mut buf.as_slice()).unwrap();

        assert_eq!(loaded.len(), index.len());
        let query = rabitq_math::rng::standard_normal_vec(&mut rng, dim);
        // Same seed → same randomized rounding → identical results.
        let mut r1 = StdRng::seed_from_u64(33);
        let mut r2 = StdRng::seed_from_u64(33);
        let a = index.search(&query, 10, 64, &mut r1);
        let b = loaded.search(&query, 10, 64, &mut r2);
        assert_eq!(a.neighbors, b.neighbors);
        assert_eq!(a.n_estimated, b.n_estimated);
        assert_eq!(a.n_reranked, b.n_reranked);
    }

    #[test]
    fn rejects_wrong_section() {
        let (n, dim) = (50, 16);
        let mut rng = StdRng::seed_from_u64(21);
        let data = rabitq_math::rng::standard_normal_vec(&mut rng, n * dim);
        let index = GraphRabitq::build(&data, dim, GraphRabitqConfig::default());
        let mut buf = Vec::new();
        index.write(&mut buf).unwrap();
        buf[10] ^= 0xFF; // corrupt the section name
        assert!(GraphRabitq::read(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let (n, dim) = (50, 16);
        let mut rng = StdRng::seed_from_u64(22);
        let data = rabitq_math::rng::standard_normal_vec(&mut rng, n * dim);
        let index = GraphRabitq::build(&data, dim, GraphRabitqConfig::default());
        let mut buf = Vec::new();
        index.write(&mut buf).unwrap();
        for cut in [buf.len() / 4, buf.len() / 2, buf.len() - 1] {
            assert!(
                GraphRabitq::read(&mut buf[..cut].to_vec().as_slice()).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn round_trips_rerank_variants() {
        let (n, dim) = (60, 16);
        let mut rng = StdRng::seed_from_u64(23);
        let data = rabitq_math::rng::standard_normal_vec(&mut rng, n * dim);
        for rerank in [
            GraphRerank::ErrorBound,
            GraphRerank::Top(7),
            GraphRerank::None,
        ] {
            let cfg = GraphRabitqConfig {
                rerank,
                ..GraphRabitqConfig::default()
            };
            let index = GraphRabitq::build(&data, dim, cfg);
            let mut buf = Vec::new();
            index.write(&mut buf).unwrap();
            let loaded = GraphRabitq::read(&mut buf.as_slice()).unwrap();
            assert_eq!(loaded.rerank, rerank);
        }
    }
}
