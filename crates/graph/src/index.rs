//! The [`GraphRabitq`] index: HNSW navigation ranked by the RaBitQ
//! single-code estimator, with error-bound-based exact re-ranking.

use rabitq_core::{CodeSet, QuantizedQuery, Rabitq, RabitqConfig};
use rabitq_hnsw::{Hnsw, HnswConfig};
use rabitq_kmeans::KMeansConfig;
use rabitq_math::vecs;
use rand::Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Configuration of a [`GraphRabitq`] index.
#[derive(Clone, Copy, Debug)]
pub struct GraphRabitqConfig {
    /// Graph construction parameters (the paper's Figure 4 defaults:
    /// `M = 16`, `efConstruction = 500`).
    pub hnsw: HnswConfig,
    /// Quantizer parameters (`B_q = 4`, `ε₀ = 1.9` by default).
    pub rabitq: RabitqConfig,
    /// How traversal candidates become final results.
    pub rerank: GraphRerank,
    /// Number of normalization centroids. `1` normalizes against the data
    /// mean (how Lucene's RaBitQ port operates); larger values cluster
    /// the data with KMeans and normalize each vector against its own
    /// cluster centroid — Section 3.1.1's prescription, which shrinks
    /// `‖o_r − c‖` and therefore every confidence interval, at the cost
    /// of one extra query quantization per centroid.
    pub centroids: usize,
}

impl Default for GraphRabitqConfig {
    fn default() -> Self {
        Self {
            hnsw: HnswConfig::default(),
            rabitq: RabitqConfig::default(),
            rerank: GraphRerank::default(),
            centroids: 1,
        }
    }
}

/// Re-ranking policy for the `ef` candidates the traversal surfaces.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum GraphRerank {
    /// The paper's Section 4 rule: compute an exact distance iff the
    /// candidate's lower bound beats the current K-th best exact
    /// distance. Parameter-free.
    #[default]
    ErrorBound,
    /// PQ-style: exactly re-rank the `n` candidates with the smallest
    /// estimated distances.
    Top(usize),
    /// Rank purely by estimated distances (ablation; distances in the
    /// result are estimates).
    None,
}

/// Result of one graph query, with traversal accounting.
#[derive(Clone, Debug, Default)]
pub struct GraphSearchResult {
    /// `(id, squared distance)` ascending — exact under re-ranking,
    /// estimated under [`GraphRerank::None`].
    pub neighbors: Vec<(u32, f32)>,
    /// Vertices whose distance was estimated from their 1-bit code.
    pub n_estimated: usize,
    /// Candidates re-ranked with an exact distance computation.
    pub n_reranked: usize,
}

/// Max-heap entry ordered by distance (worst on top).
#[derive(PartialEq)]
struct Candidate(f32, u32);

impl Eq for Candidate {}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .total_cmp(&other.0)
            .then_with(|| self.1.cmp(&other.1))
    }
}

/// A query prepared for the graph index: one [`QuantizedQuery`] per
/// normalization centroid, all derived from a single rotation of the raw
/// query (the rotate-once/shift-per-centroid fast path).
pub struct PreparedGraphQuery {
    pub(crate) per_centroid: Vec<QuantizedQuery>,
}

impl PreparedGraphQuery {
    /// The quantized query residualized against centroid `c`.
    #[inline]
    pub fn for_centroid(&self, c: usize) -> &QuantizedQuery {
        &self.per_centroid[c]
    }
}

/// An HNSW graph searched through RaBitQ codes.
///
/// The graph is built on exact distances (construction quality is an
/// index-phase cost, paid once); queries touch raw vectors only for the
/// candidates that survive the error-bound filter.
pub struct GraphRabitq {
    pub(crate) graph: Hnsw,
    pub(crate) quantizer: Rabitq,
    pub(crate) codes: CodeSet,
    /// Flat `c × dim` normalization centroids.
    pub(crate) centroids: Vec<f32>,
    /// Flat `c × padded_dim` rotated centroids (`P⁻¹c`), derived.
    pub(crate) rotated_centroids: Vec<f32>,
    /// Centroid index of each vector.
    pub(crate) assignments: Vec<u32>,
    pub(crate) rerank: GraphRerank,
}

impl GraphRabitq {
    /// Builds an index over a flat `n × dim` buffer.
    pub fn build(data: &[f32], dim: usize, config: GraphRabitqConfig) -> Self {
        assert!(dim > 0, "dim must be positive");
        assert!(data.len().is_multiple_of(dim), "data shape");
        assert!(config.centroids >= 1, "at least one centroid");
        let n = data.len() / dim;
        let graph = Hnsw::build(data, dim, config.hnsw);
        let quantizer = Rabitq::new(dim, config.rabitq);

        let (centroids, assignments) = if config.centroids == 1 || n <= config.centroids {
            (mean_vector(data, dim, n), vec![0u32; n])
        } else {
            let km = rabitq_kmeans::train(
                data,
                dim,
                &KMeansConfig {
                    seed: config.rabitq.seed,
                    ..KMeansConfig::new(config.centroids)
                },
            );
            let assignments = km.assign_all(data, 1);
            (km.centroids().to_vec(), assignments)
        };

        let mut codes = quantizer.new_code_set();
        for (row, &c) in data.chunks_exact(dim).zip(&assignments) {
            let centroid = &centroids[c as usize * dim..(c as usize + 1) * dim];
            quantizer.encode_into(row, centroid, &mut codes);
        }
        let rotated_centroids = rotate_rows(&quantizer, &centroids, dim);
        Self {
            graph,
            quantizer,
            codes,
            centroids,
            rotated_centroids,
            assignments,
            rerank: config.rerank,
        }
    }

    /// Inserts a vector, returning its id. The vector is linked into the
    /// graph with exact distances and encoded against its nearest
    /// centroid among those fixed at build time (the standard
    /// streaming-ingest compromise — rotation and centroids are
    /// index-wide state).
    pub fn insert(&mut self, vector: &[f32]) -> u32 {
        let id = self.graph.insert(vector);
        let dim = self.graph.dim();
        let c = self
            .centroids
            .chunks_exact(dim)
            .enumerate()
            .map(|(i, row)| (i, vecs::l2_sq(row, vector)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map_or(0, |(i, _)| i);
        let centroid = &self.centroids[c * dim..(c + 1) * dim];
        self.quantizer
            .encode_into(vector, centroid, &mut self.codes);
        self.assignments.push(c as u32);
        id
    }

    /// Number of indexed vectors.
    #[inline]
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// Whether the index is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Input dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.graph.dim()
    }

    /// The shared quantizer.
    #[inline]
    pub fn quantizer(&self) -> &Rabitq {
        &self.quantizer
    }

    /// The underlying graph (e.g. for exact-traversal baselines).
    #[inline]
    pub fn graph(&self) -> &Hnsw {
        &self.graph
    }

    /// The number of normalization centroids.
    #[inline]
    pub fn n_centroids(&self) -> usize {
        self.centroids.len() / self.graph.dim().max(1)
    }

    /// The flat `c × dim` normalization centroids.
    #[inline]
    pub fn centroids(&self) -> &[f32] {
        &self.centroids
    }

    /// Rotates the raw query once, then residualizes and quantizes it
    /// against every centroid (Algorithm 2, lines 1–2, shifted per
    /// centroid). Exposed for callers that amortize one preparation over
    /// several searches or inspect per-vertex estimates.
    pub fn prepare_query<R: Rng + ?Sized>(&self, query: &[f32], rng: &mut R) -> PreparedGraphQuery {
        assert_eq!(query.len(), self.dim(), "query dimensionality");
        let rotated = self.quantizer.rotate(query);
        let padded = self.quantizer.padded_dim();
        let per_centroid = self
            .rotated_centroids
            .chunks_exact(padded)
            .map(|rc| self.quantizer.prepare_query_prerotated(&rotated, rc, rng))
            .collect();
        PreparedGraphQuery { per_centroid }
    }

    /// The estimated squared distance from a prepared query to vertex
    /// `id`, straight from its 1-bit code.
    #[inline]
    pub fn estimate(
        &self,
        prepared: &PreparedGraphQuery,
        id: u32,
    ) -> rabitq_core::DistanceEstimate {
        let q = &prepared.per_centroid[self.assignments[id as usize] as usize];
        self.quantizer.estimate(q, &self.codes, id as usize)
    }

    /// Searches the `k` approximate nearest neighbors with beam width
    /// `ef_search` (clamped up to `k`), ranking traversal by estimated
    /// distances and re-ranking per the configured [`GraphRerank`].
    pub fn search<R: Rng + ?Sized>(
        &self,
        query: &[f32],
        k: usize,
        ef_search: usize,
        rng: &mut R,
    ) -> GraphSearchResult {
        assert_eq!(query.len(), self.dim(), "query dimensionality");
        if self.is_empty() || k == 0 {
            return GraphSearchResult::default();
        }
        let prepared = self.prepare_query(query, rng);
        self.search_prepared(query, &prepared, k, ef_search)
    }

    /// [`GraphRabitq::search`] with an already-prepared query. `query` is
    /// still needed for the exact re-ranking distances.
    pub fn search_prepared(
        &self,
        query: &[f32],
        prepared: &PreparedGraphQuery,
        k: usize,
        ef_search: usize,
    ) -> GraphSearchResult {
        if self.is_empty() || k == 0 {
            return GraphSearchResult::default();
        }
        let mut n_estimated = 0usize;
        let est = |id: u32, n: &mut usize| {
            *n += 1;
            self.estimate(prepared, id)
        };

        // Greedy descent through the upper layers on estimated distances.
        let mut ep = self.graph.entry_point().expect("non-empty graph");
        let mut ep_d = est(ep, &mut n_estimated).dist_sq;
        for layer in (1..=self.graph.top_layer()).rev() {
            loop {
                let mut improved = false;
                for &nbr in self.graph.neighbors(ep, layer) {
                    let d = est(nbr, &mut n_estimated).dist_sq;
                    if d < ep_d {
                        ep = nbr;
                        ep_d = d;
                        improved = true;
                    }
                }
                if !improved {
                    break;
                }
            }
        }

        // Base-layer beam search on estimated distances. The candidate
        // pool is *every vertex the traversal estimated*, not only the
        // `ef` beam survivors: 1-bit estimates are too noisy to rank the
        // beam reliably (the paper's Figure 10 point), but the pool is
        // already paid for — the bound decides what is worth re-ranking.
        let ef = ef_search.max(k);
        let candidates = self.beam_search(ep, ep_d, ef, prepared, &mut n_estimated);

        // Re-ranking.
        let mut result = GraphSearchResult {
            neighbors: Vec::new(),
            n_estimated,
            n_reranked: 0,
        };
        match self.rerank {
            GraphRerank::None => {
                result.neighbors = candidates.iter().map(|&(id, e, _)| (id, e)).collect();
                result.neighbors.truncate(k);
            }
            GraphRerank::Top(n) => {
                let mut exact: Vec<(u32, f32)> = candidates
                    .iter()
                    .take(n)
                    .map(|&(id, _, _)| (id, vecs::l2_sq(self.graph.vector(id), query)))
                    .collect();
                result.n_reranked = exact.len();
                exact.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
                exact.truncate(k);
                result.neighbors = exact;
            }
            GraphRerank::ErrorBound => {
                // Section 4: candidates arrive in ascending estimate order;
                // skip any whose lower bound cannot beat the K-th best
                // exact distance found so far.
                let mut top: BinaryHeap<Candidate> = BinaryHeap::with_capacity(k + 1);
                for &(id, _, lb) in &candidates {
                    let threshold = if top.len() < k {
                        f32::INFINITY
                    } else {
                        top.peek().map_or(f32::INFINITY, |c| c.0)
                    };
                    if lb > threshold {
                        continue;
                    }
                    let d = vecs::l2_sq(self.graph.vector(id), query);
                    result.n_reranked += 1;
                    if top.len() < k {
                        top.push(Candidate(d, id));
                    } else if d < threshold {
                        top.push(Candidate(d, id));
                        top.pop();
                    }
                }
                let mut exact: Vec<(u32, f32)> =
                    top.into_iter().map(|Candidate(d, id)| (id, d)).collect();
                exact.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
                result.neighbors = exact;
            }
        }
        result
    }

    /// Exact-distance HNSW search over the same graph — the baseline the
    /// quantized traversal is compared against.
    pub fn search_exact(&self, query: &[f32], k: usize, ef_search: usize) -> Vec<(u32, f32)> {
        self.graph.search(query, k, ef_search)
    }

    /// Best-first beam search on the base layer ranked by estimates.
    /// The beam (`ef` current bests) steers expansion; the return value
    /// is the **entire visited pool** `(id, estimate, lower_bound)`,
    /// ascending by estimate — every vertex here already paid its
    /// bit-kernel evaluation, so handing all of them to the bound-gated
    /// re-ranker costs nothing extra and recovers the neighbors the noisy
    /// beam misranked.
    fn beam_search(
        &self,
        entry: u32,
        entry_dist: f32,
        ef: usize,
        prepared: &PreparedGraphQuery,
        n_estimated: &mut usize,
    ) -> Vec<(u32, f32, f32)> {
        let n = self.len();
        let mut visited = vec![0u64; n.div_ceil(64)];
        let mark = |set: &mut Vec<u64>, id: u32| {
            let (w, b) = (id as usize / 64, id as usize % 64);
            let seen = set[w] >> b & 1 == 1;
            set[w] |= 1 << b;
            seen
        };

        let mut frontier: BinaryHeap<Reverse<Candidate>> = BinaryHeap::new();
        let mut best: BinaryHeap<Candidate> = BinaryHeap::new();
        let mut pool: Vec<(u32, f32, f32)> = Vec::with_capacity(4 * ef);
        mark(&mut visited, entry);
        let e = self.estimate(prepared, entry);
        debug_assert!((e.dist_sq - entry_dist).abs() <= f32::EPSILON.max(entry_dist * 1e-6));
        pool.push((entry, e.dist_sq, e.lower_bound));
        frontier.push(Reverse(Candidate(e.dist_sq, entry)));
        best.push(Candidate(e.dist_sq, entry));

        while let Some(Reverse(Candidate(d, node))) = frontier.pop() {
            let worst = best.peek().map_or(f32::INFINITY, |c| c.0);
            if d > worst && best.len() >= ef {
                break;
            }
            for &nbr in self.graph.neighbors(node, 0) {
                if mark(&mut visited, nbr) {
                    continue;
                }
                *n_estimated += 1;
                let e = self.estimate(prepared, nbr);
                pool.push((nbr, e.dist_sq, e.lower_bound));
                let worst = best.peek().map_or(f32::INFINITY, |c| c.0);
                if best.len() < ef || e.dist_sq < worst {
                    frontier.push(Reverse(Candidate(e.dist_sq, nbr)));
                    best.push(Candidate(e.dist_sq, nbr));
                    if best.len() > ef {
                        best.pop();
                    }
                }
            }
        }
        pool.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        pool
    }
}

/// Rotates each `dim`-row of `rows` with the index rotation, yielding a
/// flat `c × padded_dim` buffer.
fn rotate_rows(quantizer: &Rabitq, rows: &[f32], dim: usize) -> Vec<f32> {
    let mut out = Vec::with_capacity(rows.len() / dim * quantizer.padded_dim());
    for row in rows.chunks_exact(dim) {
        out.extend_from_slice(&quantizer.rotate(row));
    }
    out
}

/// The arithmetic mean of `n` rows.
fn mean_vector(data: &[f32], dim: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; dim];
    if n == 0 {
        return c;
    }
    for row in data.chunks_exact(dim) {
        for (acc, &x) in c.iter_mut().zip(row) {
            *acc += x;
        }
    }
    let inv = 1.0 / n as f32;
    for x in c.iter_mut() {
        *x *= inv;
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gaussian_data(n: usize, dim: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        rabitq_math::rng::standard_normal_vec(&mut rng, n * dim)
    }

    fn brute_force(data: &[f32], dim: usize, query: &[f32], k: usize) -> Vec<u32> {
        let mut all: Vec<(u32, f32)> = data
            .chunks_exact(dim)
            .enumerate()
            .map(|(i, row)| (i as u32, vecs::l2_sq(row, query)))
            .collect();
        all.sort_unstable_by(|a, b| a.1.total_cmp(&b.1));
        all.truncate(k);
        all.into_iter().map(|(id, _)| id).collect()
    }

    #[test]
    fn empty_and_zero_k() {
        let index = GraphRabitq::build(&[], 8, GraphRabitqConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        assert!(index.is_empty());
        assert!(index
            .search(&[0.0; 8], 5, 16, &mut rng)
            .neighbors
            .is_empty());

        let data = gaussian_data(50, 8, 1);
        let index = GraphRabitq::build(&data, 8, GraphRabitqConfig::default());
        assert!(index
            .search(&data[..8], 0, 16, &mut rng)
            .neighbors
            .is_empty());
    }

    #[test]
    fn finds_exact_match_with_rerank() {
        let (n, dim) = (300, 32);
        let data = gaussian_data(n, dim, 2);
        let index = GraphRabitq::build(&data, dim, GraphRabitqConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        for probe in [0usize, 17, 123, n - 1] {
            let query = &data[probe * dim..(probe + 1) * dim];
            let result = index.search(query, 1, 64, &mut rng);
            assert_eq!(result.neighbors[0].0, probe as u32, "probe {probe}");
            assert!(result.neighbors[0].1 <= 1e-6);
        }
    }

    #[test]
    fn recall_close_to_exact_traversal() {
        let (n, dim, k) = (1_000, 48, 10);
        let data = gaussian_data(n, dim, 4);
        let index = GraphRabitq::build(&data, dim, GraphRabitqConfig::default());
        let mut rng = StdRng::seed_from_u64(5);

        let mut hits = 0usize;
        let mut total = 0usize;
        for q in 0..20 {
            let query = gaussian_data(1, dim, 100 + q);
            let truth = brute_force(&data, dim, &query, k);
            let got = index.search(&query, k, 128, &mut rng);
            let got_ids: std::collections::HashSet<u32> =
                got.neighbors.iter().map(|&(id, _)| id).collect();
            hits += truth.iter().filter(|t| got_ids.contains(t)).count();
            total += k;
        }
        let recall = hits as f64 / total as f64;
        assert!(recall >= 0.9, "recall@{k} = {recall}");
    }

    #[test]
    fn error_bound_prunes_most_of_the_visited_pool() {
        let (n, dim, k, ef) = (800, 64, 10, 200);
        let data = gaussian_data(n, dim, 6);
        let index = GraphRabitq::build(&data, dim, GraphRabitqConfig::default());
        let mut rng = StdRng::seed_from_u64(7);
        let query = gaussian_data(1, dim, 999);
        let result = index.search(&query, k, ef, &mut rng);
        assert!(result.n_reranked >= k, "must at least fill the top-k");
        assert!(result.n_estimated >= ef, "traversal estimates >= ef codes");
        assert!(
            result.n_reranked < result.n_estimated / 2,
            "bound should prune most of the {} visited, reranked {}",
            result.n_estimated,
            result.n_reranked
        );
    }

    #[test]
    fn rerank_strategies_agree_on_easy_data() {
        let (n, dim, k) = (400, 32, 5);
        let data = gaussian_data(n, dim, 8);
        let bound_cfg = GraphRabitqConfig {
            rerank: GraphRerank::ErrorBound,
            ..GraphRabitqConfig::default()
        };
        let top_cfg = GraphRabitqConfig {
            rerank: GraphRerank::Top(200),
            ..GraphRabitqConfig::default()
        };
        let a = GraphRabitq::build(&data, dim, bound_cfg);
        let b = GraphRabitq::build(&data, dim, top_cfg);
        let mut rng = StdRng::seed_from_u64(9);
        let query = gaussian_data(1, dim, 77);
        let ra = a.search(&query, k, 200, &mut rng);
        let rb = b.search(&query, k, 200, &mut rng);
        let ids_a: Vec<u32> = ra.neighbors.iter().map(|&(id, _)| id).collect();
        let ids_b: Vec<u32> = rb.neighbors.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids_a, ids_b, "both exact strategies rank identically");
    }

    #[test]
    fn none_strategy_returns_estimates() {
        let (n, dim) = (200, 32);
        let data = gaussian_data(n, dim, 10);
        let cfg = GraphRabitqConfig {
            rerank: GraphRerank::None,
            ..GraphRabitqConfig::default()
        };
        let index = GraphRabitq::build(&data, dim, cfg);
        let mut rng = StdRng::seed_from_u64(11);
        let query = gaussian_data(1, dim, 12);
        let result = index.search(&query, 5, 64, &mut rng);
        assert_eq!(result.n_reranked, 0);
        assert_eq!(result.neighbors.len(), 5);
    }

    #[test]
    fn insert_is_immediately_searchable() {
        let (n, dim) = (200, 24);
        let data = gaussian_data(n, dim, 13);
        let mut index = GraphRabitq::build(&data, dim, GraphRabitqConfig::default());
        let novel: Vec<f32> = vec![9.0; dim];
        let id = index.insert(&novel);
        assert_eq!(id as usize, n);
        assert_eq!(index.len(), n + 1);
        let mut rng = StdRng::seed_from_u64(14);
        let result = index.search(&novel, 1, 32, &mut rng);
        assert_eq!(result.neighbors[0].0, id);
        assert!(result.neighbors[0].1 <= 1e-6);
    }

    #[test]
    fn multi_centroid_tightens_bounds_and_keeps_recall() {
        let (n, dim, k) = (1_000, 48, 10);
        let data = gaussian_data(n, dim, 30);
        let single = GraphRabitq::build(&data, dim, GraphRabitqConfig::default());
        let multi = GraphRabitq::build(
            &data,
            dim,
            GraphRabitqConfig {
                centroids: 16,
                ..GraphRabitqConfig::default()
            },
        );
        assert_eq!(single.n_centroids(), 1);
        assert_eq!(multi.n_centroids(), 16);

        let mut rng = StdRng::seed_from_u64(31);
        let query = gaussian_data(1, dim, 32);
        let ps = single.prepare_query(&query, &mut rng);
        let pm = multi.prepare_query(&query, &mut rng);
        // Per-cluster residual norms are smaller, so the distance
        // confidence interval must shrink on average.
        let width = |index: &GraphRabitq, p: &PreparedGraphQuery| -> f64 {
            (0..n as u32)
                .map(|id| {
                    let e = index.estimate(p, id);
                    (e.upper_bound - e.lower_bound) as f64
                })
                .sum::<f64>()
                / n as f64
        };
        let (w_single, w_multi) = (width(&single, &ps), width(&multi, &pm));
        assert!(
            w_multi < w_single,
            "16 centroids: mean interval {w_multi} vs single-centroid {w_single}"
        );

        // And recall does not degrade.
        let truth = brute_force(&data, dim, &query, k);
        let got = multi.search(&query, k, 128, &mut rng);
        let got_ids: std::collections::HashSet<u32> =
            got.neighbors.iter().map(|&(id, _)| id).collect();
        let recall = truth.iter().filter(|t| got_ids.contains(t)).count();
        assert!(recall >= 8, "recall@{k} with centroids = {recall}/{k}");
    }

    #[test]
    fn multi_centroid_insert_assigns_nearest() {
        let (n, dim) = (400, 24);
        let data = gaussian_data(n, dim, 33);
        let mut index = GraphRabitq::build(
            &data,
            dim,
            GraphRabitqConfig {
                centroids: 8,
                ..GraphRabitqConfig::default()
            },
        );
        let novel: Vec<f32> = data[5 * dim..6 * dim].to_vec();
        let id = index.insert(&novel);
        // The insert must land in the same cluster as the identical vector.
        assert_eq!(index.assignments[id as usize], index.assignments[5]);
        let mut rng = StdRng::seed_from_u64(34);
        let res = index.search(&novel, 2, 32, &mut rng);
        assert!(res.neighbors[0].1 <= 1e-6);
    }

    #[test]
    fn estimates_match_quantizer_directly() {
        let (n, dim) = (100, 32);
        let data = gaussian_data(n, dim, 15);
        let index = GraphRabitq::build(&data, dim, GraphRabitqConfig::default());
        let mut rng = StdRng::seed_from_u64(16);
        let query = gaussian_data(1, dim, 17);
        let prepared = index.prepare_query(&query, &mut rng);
        for id in [0u32, 13, 99] {
            let via_index = index.estimate(&prepared, id);
            let q = prepared.for_centroid(index.assignments[id as usize] as usize);
            let via_quantizer = index.quantizer().estimate(q, &index.codes, id as usize);
            assert_eq!(via_index, via_quantizer);
        }
    }
}
