//! Property-based tests for the graph index: structural invariants that
//! must hold for any data, any shape, any seed.

use proptest::prelude::*;
use rabitq_core::RabitqConfig;
use rabitq_graph::{GraphRabitq, GraphRabitqConfig, GraphRerank};
use rabitq_hnsw::HnswConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small data shape: (n, dim) plus a seed, sized so each case builds in
/// milliseconds. `efConstruction` is lowered accordingly.
fn shapes() -> impl Strategy<Value = (usize, usize, u64)> {
    (5usize..120, 2usize..24, any::<u64>())
}

fn build(n: usize, dim: usize, seed: u64, rerank: GraphRerank) -> (GraphRabitq, Vec<f32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let data = rabitq_math::rng::standard_normal_vec(&mut rng, n * dim);
    let config = GraphRabitqConfig {
        hnsw: HnswConfig {
            m: 6,
            ef_construction: 40,
            seed,
        },
        rabitq: RabitqConfig {
            seed,
            ..RabitqConfig::default()
        },
        rerank,
        centroids: 1 + (seed % 4) as usize,
    };
    (GraphRabitq::build(&data, dim, config), data)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Results are unique ids within range, sorted ascending by distance,
    /// and never more than min(k, n) of them.
    #[test]
    fn results_sorted_unique_in_range((n, dim, seed) in shapes(), k in 1usize..15) {
        let (index, _) = build(n, dim, seed, GraphRerank::ErrorBound);
        let mut rng = StdRng::seed_from_u64(seed ^ 1);
        let query = rabitq_math::rng::standard_normal_vec(&mut rng, dim);
        let res = index.search(&query, k, 32, &mut rng);
        prop_assert!(res.neighbors.len() <= k.min(n));
        prop_assert!(res.neighbors.windows(2).all(|w| w[0].1 <= w[1].1));
        let mut ids: Vec<u32> = res.neighbors.iter().map(|&(id, _)| id).collect();
        prop_assert!(ids.iter().all(|&id| (id as usize) < n));
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), res.neighbors.len(), "ids must be unique");
    }

    /// Under exact re-ranking, every returned distance equals the true
    /// squared distance of that id.
    #[test]
    fn reranked_distances_are_exact((n, dim, seed) in shapes()) {
        let (index, data) = build(n, dim, seed, GraphRerank::ErrorBound);
        let mut rng = StdRng::seed_from_u64(seed ^ 2);
        let query = rabitq_math::rng::standard_normal_vec(&mut rng, dim);
        let res = index.search(&query, 5, 32, &mut rng);
        for &(id, d) in &res.neighbors {
            let row = &data[id as usize * dim..(id as usize + 1) * dim];
            let exact = rabitq_math::vecs::l2_sq(row, &query);
            prop_assert!((d - exact).abs() <= exact.max(1.0) * 1e-5,
                "id {id}: reported {d}, exact {exact}");
        }
    }

    /// The error-bound rerank never returns a worse top-1 than the
    /// estimate-only ranking over the same candidate pool: with the same
    /// ef, the exact top-1 distance is ≤ the exact distance of the
    /// estimate-only winner.
    #[test]
    fn bound_rerank_top1_dominates_estimates((n, dim, seed) in shapes()) {
        let (bound, data) = build(n, dim, seed, GraphRerank::ErrorBound);
        let (none, _) = build(n, dim, seed, GraphRerank::None);
        let mut rng_a = StdRng::seed_from_u64(seed ^ 3);
        let mut rng_b = StdRng::seed_from_u64(seed ^ 3);
        let query = rabitq_math::rng::standard_normal_vec(
            &mut StdRng::seed_from_u64(seed ^ 4), dim);
        let a = bound.search(&query, 1, 32, &mut rng_a);
        let b = none.search(&query, 1, 32, &mut rng_b);
        prop_assume!(!a.neighbors.is_empty() && !b.neighbors.is_empty());
        let exact = |id: u32| {
            let row = &data[id as usize * dim..(id as usize + 1) * dim];
            rabitq_math::vecs::l2_sq(row, &query)
        };
        prop_assert!(a.neighbors[0].1 <= exact(b.neighbors[0].0) * (1.0 + 1e-5));
    }

    /// Persistence round-trips any index bit-identically (same search
    /// results for the same rounding seed).
    #[test]
    fn persistence_round_trip((n, dim, seed) in shapes()) {
        let (index, _) = build(n, dim, seed, GraphRerank::ErrorBound);
        let mut buf = Vec::new();
        index.write(&mut buf).unwrap();
        let loaded = GraphRabitq::read(&mut buf.as_slice()).unwrap();
        let query = rabitq_math::rng::standard_normal_vec(
            &mut StdRng::seed_from_u64(seed ^ 5), dim);
        let mut r1 = StdRng::seed_from_u64(seed ^ 6);
        let mut r2 = StdRng::seed_from_u64(seed ^ 6);
        prop_assert_eq!(
            index.search(&query, 3, 16, &mut r1).neighbors,
            loaded.search(&query, 3, 16, &mut r2).neighbors
        );
    }

    /// Inserting vectors one at a time yields a searchable index over all
    /// of them: a query equal to any stored vector finds it at distance 0.
    #[test]
    fn incremental_insert_reaches_every_vector((n, dim, seed) in shapes(), probe in 0usize..120) {
        prop_assume!(probe < n);
        let mut rng = StdRng::seed_from_u64(seed);
        let data = rabitq_math::rng::standard_normal_vec(&mut rng, n * dim);
        let config = GraphRabitqConfig {
            hnsw: HnswConfig { m: 6, ef_construction: 40, seed },
            rabitq: RabitqConfig { seed, ..RabitqConfig::default() },
            rerank: GraphRerank::ErrorBound,
            centroids: 1,
        };
        let mut index = GraphRabitq::build(&data[..dim], dim, config);
        for row in data[dim..].chunks_exact(dim) {
            index.insert(row);
        }
        prop_assert_eq!(index.len(), n);
        let query = &data[probe * dim..(probe + 1) * dim];
        let mut qrng = StdRng::seed_from_u64(seed ^ 7);
        let res = index.search(query, 1, n.min(64), &mut qrng);
        // Graph search is approximate: accept either the exact id or an
        // exact-duplicate distance; what must hold is distance ~0 when
        // found, and *some* answer always.
        prop_assert!(!res.neighbors.is_empty());
        if res.neighbors[0].0 == probe as u32 {
            prop_assert!(res.neighbors[0].1 <= 1e-6);
        }
    }
}
