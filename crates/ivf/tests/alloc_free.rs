//! Counting-allocator proof of the allocation-free query path.
//!
//! The acceptance contract for the scratch-based search
//! ([`IvfRabitq::search_into`]) is that the **steady-state** query path —
//! after one warm-up pass has grown every scratch buffer to the workload's
//! shape — performs zero heap allocations. A `#[global_allocator]` wrapper
//! counts every `alloc`/`realloc` while a flag is armed; the test warms the
//! scratch, arms the counter, replays the same queries, and asserts the
//! count stayed at zero.
//!
//! This file holds exactly one test: the counter is process-global, so a
//! concurrently running test could allocate on another thread and produce a
//! false positive.

use rabitq_core::RabitqConfig;
use rabitq_data::{generate, DatasetSpec, Profile};
use rabitq_ivf::{IvfConfig, IvfRabitq, RerankStrategy, SearchScratch};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

struct CountingAllocator;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_search_makes_zero_heap_allocations() {
    let ds = generate(&DatasetSpec {
        name: "alloc-free".into(),
        dim: 48,
        n: 3000,
        n_queries: 8,
        profile: Profile::Clustered {
            clusters: 10,
            cluster_std: 0.8,
            center_scale: 3.0,
        },
        seed: 5,
    });
    let index = IvfRabitq::build(
        &ds.data,
        ds.dim,
        &IvfConfig::new(12),
        RabitqConfig::default(),
    );
    let mut scratch = SearchScratch::new();
    let strategies = [
        RerankStrategy::ErrorBound,
        RerankStrategy::TopCandidates(300),
        RerankStrategy::None,
    ];

    // Warm-up: identical queries, strategies, and parameters as the
    // measured pass, so every scratch buffer reaches its final capacity.
    let mut rng = StdRng::seed_from_u64(77);
    for &strategy in &strategies {
        for qi in 0..ds.n_queries() {
            index.search_into(ds.query(qi), 10, 8, strategy, &mut scratch, &mut rng);
        }
    }

    // The observability layer rides along in the measured pass: stage
    // tracing runs unconditionally inside `search_into`, the per-query
    // breakdown is folded across queries (as the store's snapshot layer
    // does per segment), and the aggregate sink records every query —
    // "allocation-free steady state" includes telemetry.
    let timers = rabitq_metrics::StageTimers::new();
    let mut folded = rabitq_metrics::StageNanos::new();

    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let mut total_neighbors = 0usize;
    for &strategy in &strategies {
        for qi in 0..ds.n_queries() {
            index.search_into(ds.query(qi), 10, 8, strategy, &mut scratch, &mut rng);
            total_neighbors += scratch.neighbors.len();
            folded.merge(&scratch.stages);
            timers.record(&scratch.stages);
        }
    }
    ARMED.store(false, Ordering::SeqCst);
    let allocs = ALLOCS.load(Ordering::SeqCst);

    assert!(total_neighbors > 0, "searches must return results");
    assert_eq!(
        allocs,
        0,
        "steady-state search_into allocated {allocs} times across \
         {} queries",
        3 * ds.n_queries()
    );
    assert!(
        folded.total_ns() > 0,
        "stage tracing must attribute time to the measured queries"
    );
    assert_eq!(
        timers.hist(rabitq_metrics::Stage::Scan).count(),
        3 * ds.n_queries() as u64,
        "the sink must see one sample per query per stage"
    );
}
