//! Property-based tests for the IVF layer: the bounded top-K heap against
//! a sort-based reference, and search invariants over random workloads.

use proptest::prelude::*;
use rabitq_core::RabitqConfig;
use rabitq_ivf::{IvfConfig, IvfRabitq, TopK};
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn topk_matches_sort_reference(
        entries in proptest::collection::vec((0u32..1000, 0.0f32..100.0), 0..200),
        k in 1usize..20,
    ) {
        let mut heap = TopK::new(k);
        for &(id, d) in &entries {
            heap.push(id, d);
        }
        let got = heap.into_sorted();

        let mut reference = entries.clone();
        reference.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        reference.truncate(k);
        // Distances must match exactly; ids may differ among ties.
        let got_d: Vec<f32> = got.iter().map(|&(_, d)| d).collect();
        let ref_d: Vec<f32> = reference.iter().map(|&(_, d)| d).collect();
        prop_assert_eq!(got_d, ref_d);
    }

    #[test]
    fn threshold_never_decreases_below_true_kth(
        entries in proptest::collection::vec(0.0f32..100.0, 1..100),
        k in 1usize..10,
    ) {
        let mut heap = TopK::new(k);
        for (i, &d) in entries.iter().enumerate() {
            heap.push(i as u32, d);
        }
        let mut sorted = entries.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        if entries.len() >= k {
            prop_assert_eq!(heap.threshold(), sorted[k - 1]);
        } else {
            prop_assert_eq!(heap.threshold(), f32::INFINITY);
        }
    }

    #[test]
    fn search_returns_sorted_unique_ids(seed in 0u64..20, k in 1usize..15, nprobe in 1usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = 16;
        let n = 300;
        let data = rabitq_math::rng::standard_normal_vec(&mut rng, n * dim);
        let index = IvfRabitq::build(&data, dim, &IvfConfig::new(6), RabitqConfig::default());
        let query = rabitq_math::rng::standard_normal_vec(&mut rng, dim);
        let res = index.search(&query, k, nprobe, &mut rng);
        prop_assert!(res.neighbors.len() <= k);
        prop_assert!(res.neighbors.windows(2).all(|w| w[0].1 <= w[1].1));
        let mut ids: Vec<u32> = res.neighbors.iter().map(|&(id, _)| id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), res.neighbors.len());
        prop_assert!(res.n_reranked <= res.n_estimated);
    }
}
