//! Maximum-inner-product and cosine-similarity search over RaBitQ codes —
//! the retrieval modes of footnote 8 (embedding search ranks by dot
//! product or cosine, not Euclidean distance).
//!
//! The index stores, next to each 1-bit code, the one scalar the
//! footnote-8 identity needs per vector (`⟨o_r, c⟩`) plus the raw norm for
//! cosine. Queries scan all codes with the fast-scan kernel, lift the
//! unit-residual estimates to raw inner products, and re-rank by the
//! paper's bound rule mirrored for maximization: a candidate is skipped
//! iff its inner-product **upper** bound cannot beat the current K-th best
//! exact inner product.

use crate::common::TopK;
use rabitq_core::similarity::{self, IpQueryTerms};
use rabitq_core::{CodeSet, PackedCodes, Rabitq, RabitqConfig};
use rabitq_math::vecs;
use rand::Rng;

/// Result of one similarity query, with scan accounting.
#[derive(Clone, Debug, Default)]
pub struct MipsResult {
    /// `(id, score)` **descending** by score — exact inner products for
    /// [`FlatMips::search_ip`], exact cosines for
    /// [`FlatMips::search_cosine`].
    pub neighbors: Vec<(u32, f32)>,
    /// Candidates whose score was estimated from codes.
    pub n_estimated: usize,
    /// Candidates re-scored exactly.
    pub n_reranked: usize,
}

/// A flat MIPS/cosine index over owned vectors.
pub struct FlatMips {
    dim: usize,
    quantizer: Rabitq,
    centroid: Vec<f32>,
    codes: CodeSet,
    packed: PackedCodes,
    data: Vec<f32>,
    /// `⟨o_r, c⟩` per vector (the footnote-8 per-vector scalar).
    ip_oc: Vec<f32>,
    /// `‖o_r‖` per vector (cosine denominator).
    raw_norms: Vec<f32>,
}

impl FlatMips {
    /// Builds the index over a flat `n × dim` buffer, normalizing against
    /// the data mean (Section 3.1.1's single-centroid instantiation).
    pub fn build(data: &[f32], dim: usize, config: RabitqConfig) -> Self {
        assert!(dim > 0 && data.len().is_multiple_of(dim), "data shape");
        let n = data.len() / dim;
        assert!(n > 0, "cannot index an empty dataset");
        let mut centroid = vec![0.0f32; dim];
        for row in data.chunks_exact(dim) {
            vecs::add_assign(&mut centroid, row);
        }
        vecs::scale(&mut centroid, 1.0 / n as f32);

        let quantizer = Rabitq::new(dim, config);
        let codes = quantizer.encode_set(data.chunks_exact(dim), &centroid);
        let packed = quantizer.pack(&codes);
        let ip_oc = data
            .chunks_exact(dim)
            .map(|row| vecs::dot(row, &centroid))
            .collect();
        let raw_norms = data.chunks_exact(dim).map(vecs::norm).collect();
        Self {
            dim,
            quantizer,
            centroid,
            codes,
            packed,
            data: data.to_vec(),
            ip_oc,
            raw_norms,
        }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The underlying quantizer.
    #[inline]
    pub fn quantizer(&self) -> &Rabitq {
        &self.quantizer
    }

    /// Top-`k` by inner product `⟨o_r, q_r⟩`, descending, re-ranked
    /// exactly under the bound rule.
    pub fn search_ip<R: Rng + ?Sized>(&self, query: &[f32], k: usize, rng: &mut R) -> MipsResult {
        self.search_scored(query, k, rng, Score::InnerProduct)
    }

    /// Top-`k` by cosine similarity, descending, re-ranked exactly under
    /// the bound rule. Zero-norm stored vectors score 0.
    pub fn search_cosine<R: Rng + ?Sized>(
        &self,
        query: &[f32],
        k: usize,
        rng: &mut R,
    ) -> MipsResult {
        self.search_scored(query, k, rng, Score::Cosine)
    }

    fn search_scored<R: Rng + ?Sized>(
        &self,
        query: &[f32],
        k: usize,
        rng: &mut R,
        score: Score,
    ) -> MipsResult {
        assert_eq!(query.len(), self.dim, "query dimensionality");
        if self.is_empty() || k == 0 {
            return MipsResult::default();
        }
        let prepared = self.quantizer.prepare_query(query, &self.centroid, rng);
        let terms = IpQueryTerms::new(query, &self.centroid);
        let norm_q = vecs::norm(query);

        let mut estimates = Vec::new();
        self.quantizer
            .estimate_batch(&prepared, &self.packed, &self.codes, &mut estimates);

        // Lift each unit-residual estimate to the requested score and its
        // upper bound; cosine additionally divides by the stored norms.
        let mut scored: Vec<(u32, f32, f32)> = estimates
            .iter()
            .enumerate()
            .map(|(i, de)| {
                let factors = self.codes.factors(i);
                let ip = similarity::inner_product(
                    de,
                    factors.norm,
                    prepared.q_dist,
                    self.ip_oc[i],
                    terms,
                );
                match score {
                    Score::InnerProduct => (i as u32, ip.ip, ip.upper_bound),
                    Score::Cosine => {
                        let cos = similarity::cosine(&ip, self.raw_norms[i], norm_q);
                        (i as u32, cos.cos, cos.upper_bound)
                    }
                }
            })
            .collect();
        // Descending by estimate so the exact threshold rises fast and the
        // bound prunes the tail.
        scored.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

        // TopK keeps the k *smallest*; negating scores turns it into a
        // bounded top-k by maximum.
        let mut top = TopK::new(k);
        let mut n_reranked = 0usize;
        for &(id, _, upper) in &scored {
            let threshold = -top.threshold(); // current k-th best exact score
            if upper < threshold {
                continue;
            }
            let exact = self.exact_score(id, query, norm_q, score);
            n_reranked += 1;
            top.push(id, -exact);
        }
        let neighbors = top
            .into_sorted()
            .into_iter()
            .map(|(id, neg)| (id, -neg))
            .collect();
        MipsResult {
            neighbors,
            n_estimated: scored.len(),
            n_reranked,
        }
    }

    fn exact_score(&self, id: u32, query: &[f32], norm_q: f32, score: Score) -> f32 {
        let row = &self.data[id as usize * self.dim..(id as usize + 1) * self.dim];
        let ip = vecs::dot(row, query);
        match score {
            Score::InnerProduct => ip,
            Score::Cosine => {
                let denom = self.raw_norms[id as usize] * norm_q;
                if denom <= f32::EPSILON {
                    0.0
                } else {
                    ip / denom
                }
            }
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum Score {
    InnerProduct,
    Cosine,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gaussian(n: usize, dim: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        rabitq_math::rng::standard_normal_vec(&mut rng, n * dim)
    }

    fn brute_ip(data: &[f32], dim: usize, query: &[f32], k: usize) -> Vec<u32> {
        let mut all: Vec<(u32, f32)> = data
            .chunks_exact(dim)
            .enumerate()
            .map(|(i, row)| (i as u32, vecs::dot(row, query)))
            .collect();
        all.sort_unstable_by(|a, b| b.1.total_cmp(&a.1));
        all.truncate(k);
        all.into_iter().map(|(id, _)| id).collect()
    }

    #[test]
    fn mips_recall_on_gaussian_data() {
        let (n, dim, k) = (2_000, 96, 10);
        let data = gaussian(n, dim, 50);
        let index = FlatMips::build(&data, dim, RabitqConfig::default());
        let mut rng = StdRng::seed_from_u64(51);
        let mut hits = 0;
        for q in 0..10 {
            let query = gaussian(1, dim, 500 + q);
            let truth: std::collections::HashSet<u32> =
                brute_ip(&data, dim, &query, k).into_iter().collect();
            let got = index.search_ip(&query, k, &mut rng);
            assert_eq!(got.neighbors.len(), k);
            assert!(got.neighbors.windows(2).all(|w| w[0].1 >= w[1].1));
            hits += got
                .neighbors
                .iter()
                .filter(|(id, _)| truth.contains(id))
                .count();
        }
        let recall = hits as f64 / (10 * k) as f64;
        assert!(recall >= 0.95, "MIPS recall@{k} = {recall}");
    }

    #[test]
    fn bound_prunes_most_of_the_scan() {
        let (n, dim, k) = (2_000, 128, 10);
        let data = gaussian(n, dim, 52);
        let index = FlatMips::build(&data, dim, RabitqConfig::default());
        let mut rng = StdRng::seed_from_u64(53);
        let query = gaussian(1, dim, 600);
        let result = index.search_ip(&query, k, &mut rng);
        assert_eq!(result.n_estimated, n);
        assert!(result.n_reranked >= k);
        assert!(
            result.n_reranked < n / 2,
            "bound should prune most of {n}, reranked {}",
            result.n_reranked
        );
    }

    #[test]
    fn cosine_matches_brute_force_scores() {
        let (n, dim, k) = (500, 64, 5);
        let data = gaussian(n, dim, 54);
        let index = FlatMips::build(&data, dim, RabitqConfig::default());
        let mut rng = StdRng::seed_from_u64(55);
        let query = gaussian(1, dim, 700);
        let norm_q = vecs::norm(&query);
        let result = index.search_cosine(&query, k, &mut rng);
        for &(id, score) in &result.neighbors {
            let row = &data[id as usize * dim..(id as usize + 1) * dim];
            let exact = vecs::dot(row, &query) / (vecs::norm(row) * norm_q);
            assert!((score - exact).abs() < 1e-5, "returned scores are exact");
        }
    }

    #[test]
    fn planted_winner_is_found() {
        let (n, dim) = (1_000, 80);
        let mut data = gaussian(n, dim, 56);
        let query = gaussian(1, dim, 800);
        // Plant vector 123 as a scaled copy of the query: the clear MIPS
        // and cosine winner.
        for (d, x) in data[123 * dim..124 * dim].iter_mut().enumerate() {
            *x = 3.0 * query[d];
        }
        let index = FlatMips::build(&data, dim, RabitqConfig::default());
        let mut rng = StdRng::seed_from_u64(57);
        assert_eq!(index.search_ip(&query, 1, &mut rng).neighbors[0].0, 123);
        assert_eq!(index.search_cosine(&query, 1, &mut rng).neighbors[0].0, 123);
        let cos = index.search_cosine(&query, 1, &mut rng).neighbors[0].1;
        assert!(
            (cos - 1.0).abs() < 1e-5,
            "scaled copy has cosine 1, got {cos}"
        );
    }

    #[test]
    fn k_larger_than_n_and_zero_k() {
        let (n, dim) = (20, 32);
        let data = gaussian(n, dim, 58);
        let index = FlatMips::build(&data, dim, RabitqConfig::default());
        let mut rng = StdRng::seed_from_u64(59);
        let query = gaussian(1, dim, 900);
        assert_eq!(index.search_ip(&query, 50, &mut rng).neighbors.len(), n);
        assert!(index.search_ip(&query, 0, &mut rng).neighbors.is_empty());
    }
}
