//! IVF + PQ/OPQ — the baseline ANN index (IVFPQ / IVFOPQ à la Faiss).
//!
//! Vectors are encoded as *residuals* against their bucket centroid
//! (Faiss's `by_residual`), matching how RaBitQ normalizes per bucket.
//! Queries build per-bucket distance LUTs on `q − c` and scan either:
//!
//! * `x8-single`: f32 LUTs read from RAM, one code at a time;
//! * `x4fs-batch`: u8-quantized LUTs through the shared fast-scan kernel —
//!   complete with the u8 dynamic-range failure mode the paper documents.
//!
//! Re-ranking uses the conventional fixed-candidate-count rule; the count
//! is the hyper-parameter the paper shows no single value of which works
//! across datasets (Section 5.2.3).

use crate::common::{IvfConfig, SearchResult, TopK};
use rabitq_kmeans::{train as kmeans_train, KMeans, KMeansConfig};
use rabitq_math::vecs;
use rabitq_pq::{Opq, OpqConfig, PqCodes, PqConfig, PqPacked, ProductQuantizer, QuantizedLuts};

/// Which PQ flavour encodes the residuals.
pub enum PqVariant {
    /// Plain PQ.
    Pq(ProductQuantizer),
    /// OPQ: a learned rotation wrapping an inner PQ.
    Opq(Opq),
}

impl PqVariant {
    fn encode_residual(&self, residual: &[f32], out: &mut Vec<u8>) {
        match self {
            PqVariant::Pq(pq) => pq.encode(residual, out),
            PqVariant::Opq(opq) => opq.encode(residual, out),
        }
    }

    fn build_luts(&self, residual_query: &[f32]) -> Vec<f32> {
        match self {
            PqVariant::Pq(pq) => pq.build_luts(residual_query),
            PqVariant::Opq(opq) => opq.build_luts(residual_query),
        }
    }

    fn pq(&self) -> &ProductQuantizer {
        match self {
            PqVariant::Pq(pq) => pq,
            PqVariant::Opq(opq) => opq.pq(),
        }
    }

    fn m(&self) -> usize {
        self.pq().m()
    }
}

/// How the scan computes estimated distances.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScanMode {
    /// f32 LUTs in RAM, per-code lookup-and-accumulate (`x8-single` /
    /// `x4-single`).
    F32Single,
    /// u8-quantized LUTs via the SIMD fast-scan kernel (`x4fs-batch`).
    /// Requires `k = 4` codes.
    FastScanBatch,
}

struct Bucket {
    ids: Vec<u32>,
    codes: PqCodes,
    /// Present only when the quantizer uses 4-bit codes.
    packed: Option<PqPacked>,
}

/// The IVF-PQ/OPQ baseline index.
pub struct IvfPq {
    dim: usize,
    coarse: KMeans,
    quantizer: PqVariant,
    buckets: Vec<Bucket>,
    data: Vec<f32>,
}

impl IvfPq {
    /// Builds an IVF-PQ index (set `opq` to also learn a rotation).
    pub fn build(
        data: &[f32],
        dim: usize,
        ivf: &IvfConfig,
        pq_config: &PqConfig,
        opq: bool,
    ) -> Self {
        assert!(dim > 0 && data.len().is_multiple_of(dim), "data shape");
        let n = data.len() / dim;
        assert!(n > 0, "cannot index an empty dataset");

        let mut km_cfg = KMeansConfig::new(ivf.n_clusters.min(n));
        km_cfg.max_iters = ivf.kmeans_iters;
        km_cfg.seed = ivf.seed;
        km_cfg.training_sample = ivf.kmeans_sample;
        km_cfg.threads = ivf.threads;
        let coarse = kmeans_train(data, dim, &km_cfg);

        let assignment = coarse.assign_all(data, ivf.threads);

        // Train the PQ on residuals (sampled implicitly via PqConfig).
        let mut residuals = vec![0.0f32; data.len()];
        for (i, &c) in assignment.iter().enumerate() {
            vecs::sub(
                &data[i * dim..(i + 1) * dim],
                coarse.centroid(c as usize),
                &mut residuals[i * dim..(i + 1) * dim],
            );
        }
        let quantizer = if opq {
            PqVariant::Opq(Opq::train(
                &residuals,
                dim,
                &OpqConfig::new(pq_config.clone()),
            ))
        } else {
            PqVariant::Pq(ProductQuantizer::train(&residuals, dim, pq_config))
        };

        let mut ids_per_bucket: Vec<Vec<u32>> = vec![Vec::new(); coarse.k()];
        for (i, &c) in assignment.iter().enumerate() {
            ids_per_bucket[c as usize].push(i as u32);
        }
        let four_bit = pq_config.k_bits == 4;
        let buckets: Vec<Bucket> = ids_per_bucket
            .into_iter()
            .map(|ids| {
                let mut codes = PqCodes {
                    m: quantizer.m(),
                    codes: Vec::new(),
                };
                for &id in &ids {
                    let r = &residuals[id as usize * dim..(id as usize + 1) * dim];
                    quantizer.encode_residual(r, &mut codes.codes);
                }
                let packed = four_bit.then(|| PqPacked::pack(&codes));
                Bucket { ids, codes, packed }
            })
            .collect();

        Self {
            dim,
            coarse,
            quantizer,
            buckets,
            data: data.to_vec(),
        }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Searches the index.
    ///
    /// `rerank` is the fixed candidate count re-ranked with exact
    /// distances (the paper sweeps 500/1000/2500); `0` disables re-ranking
    /// and returns estimated distances (Figure 10's OPQ-without-re-ranking
    /// configuration).
    pub fn search(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
        rerank: usize,
        mode: ScanMode,
    ) -> SearchResult {
        assert_eq!(query.len(), self.dim, "query dimensionality");
        if self.is_empty() || k == 0 {
            return SearchResult::default();
        }
        let probes = self.coarse.assign_top_n(query, nprobe.max(1));
        let mut pool: Vec<(u32, f32)> = Vec::new();
        let mut n_estimated = 0usize;
        let mut residual_q = vec![0.0f32; self.dim];
        let mut fast_estimates: Vec<f32> = Vec::new();

        for &(c, _) in &probes {
            let bucket = &self.buckets[c];
            if bucket.ids.is_empty() {
                continue;
            }
            vecs::sub(query, self.coarse.centroid(c), &mut residual_q);
            match mode {
                ScanMode::F32Single => {
                    let luts = self.quantizer.build_luts(&residual_q);
                    let pq = self.quantizer.pq();
                    for (slot, &id) in (0..bucket.codes.len()).zip(bucket.ids.iter()) {
                        let est = pq.adc_distance(&luts, bucket.codes.code(slot));
                        pool.push((id, est));
                    }
                    n_estimated += bucket.codes.len();
                }
                ScanMode::FastScanBatch => {
                    let packed = bucket
                        .packed
                        .as_ref()
                        .expect("fast scan requires 4-bit codes");
                    let luts = self.quantizer.build_luts(&residual_q);
                    let pq = self.quantizer.pq();
                    let qluts = QuantizedLuts::from_f32_luts(&luts, pq.m(), 1usize << pq.k_bits());
                    packed.scan_all(&qluts, &mut fast_estimates);
                    n_estimated += fast_estimates.len();
                    pool.extend(
                        fast_estimates
                            .iter()
                            .zip(bucket.ids.iter())
                            .map(|(&est, &id)| (id, est)),
                    );
                }
            }
        }

        if rerank == 0 {
            // Rank purely by estimates.
            let mut top = TopK::new(k);
            for &(id, est) in &pool {
                top.push(id, est);
            }
            return SearchResult {
                neighbors: top.into_sorted(),
                n_estimated,
                n_reranked: 0,
                stages: Default::default(),
            };
        }

        let take = rerank.max(k).min(pool.len());
        if take > 0 {
            pool.select_nth_unstable_by(take - 1, |a, b| a.1.total_cmp(&b.1));
            pool.truncate(take);
        }
        let mut top = TopK::new(k);
        let mut n_reranked = 0usize;
        for &(id, _) in &pool {
            let base = id as usize * self.dim;
            let exact = vecs::l2_sq(&self.data[base..base + self.dim], query);
            n_reranked += 1;
            top.push(id, exact);
        }
        SearchResult {
            neighbors: top.into_sorted(),
            n_estimated,
            n_reranked,
            stages: Default::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabitq_data::{exact_knn, generate, DatasetSpec, Profile};
    use rabitq_metrics::recall_at_k;

    fn dataset(n: usize, dim: usize) -> rabitq_data::Dataset {
        generate(&DatasetSpec {
            name: "ivfpq-test".into(),
            dim,
            n,
            n_queries: 10,
            profile: Profile::Clustered {
                clusters: 10,
                cluster_std: 0.8,
                center_scale: 3.0,
            },
            seed: 21,
        })
    }

    fn pq_cfg(dim: usize) -> PqConfig {
        PqConfig {
            m: dim / 2,
            k_bits: 4,
            train_iters: 10,
            training_sample: Some(5_000),
            seed: 5,
        }
    }

    fn avg_recall(
        index: &IvfPq,
        ds: &rabitq_data::Dataset,
        k: usize,
        nprobe: usize,
        rerank: usize,
        mode: ScanMode,
    ) -> f64 {
        let gt = exact_knn(&ds.data, ds.dim, &ds.queries, k, 1);
        let mut total = 0.0;
        for qi in 0..ds.n_queries() {
            let res = index.search(ds.query(qi), k, nprobe, rerank, mode);
            let got: Vec<u32> = res.neighbors.iter().map(|&(id, _)| id).collect();
            let want: Vec<u32> = gt[qi].iter().map(|&(id, _)| id).collect();
            total += recall_at_k(&want, &got);
        }
        total / ds.n_queries() as f64
    }

    #[test]
    fn pq_ivf_with_rerank_reaches_decent_recall() {
        let ds = dataset(2000, 32);
        let index = IvfPq::build(&ds.data, ds.dim, &IvfConfig::new(10), &pq_cfg(32), false);
        let r = avg_recall(&index, &ds, 10, 10, 200, ScanMode::F32Single);
        assert!(r > 0.9, "recall {r}");
    }

    #[test]
    fn fastscan_and_f32_modes_agree_roughly() {
        let ds = dataset(1500, 32);
        let index = IvfPq::build(&ds.data, ds.dim, &IvfConfig::new(8), &pq_cfg(32), false);
        let r_fast = avg_recall(&index, &ds, 10, 8, 300, ScanMode::FastScanBatch);
        let r_f32 = avg_recall(&index, &ds, 10, 8, 300, ScanMode::F32Single);
        assert!(
            (r_fast - r_f32).abs() < 0.15,
            "fast {r_fast} vs f32 {r_f32}"
        );
        assert!(r_fast > 0.8, "fast-scan recall {r_fast}");
    }

    #[test]
    fn opq_variant_builds_and_searches() {
        let ds = dataset(800, 16);
        let index = IvfPq::build(&ds.data, ds.dim, &IvfConfig::new(6), &pq_cfg(16), true);
        let r = avg_recall(&index, &ds, 5, 6, 200, ScanMode::FastScanBatch);
        assert!(r > 0.8, "OPQ recall {r}");
    }

    #[test]
    fn rerank_zero_returns_estimated_distances() {
        let ds = dataset(500, 16);
        let index = IvfPq::build(&ds.data, ds.dim, &IvfConfig::new(4), &pq_cfg(16), false);
        let res = index.search(ds.query(0), 5, 4, 0, ScanMode::F32Single);
        assert_eq!(res.n_reranked, 0);
        assert_eq!(res.neighbors.len(), 5);
    }

    #[test]
    fn more_rerank_candidates_do_not_hurt_recall() {
        let ds = dataset(1200, 16);
        let index = IvfPq::build(&ds.data, ds.dim, &IvfConfig::new(8), &pq_cfg(16), false);
        let lo = avg_recall(&index, &ds, 10, 8, 50, ScanMode::F32Single);
        let hi = avg_recall(&index, &ds, 10, 8, 800, ScanMode::F32Single);
        assert!(hi >= lo - 1e-9, "rerank 800 ({hi}) vs 50 ({lo})");
    }
}
