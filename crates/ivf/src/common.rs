//! Shared pieces of the IVF indexes: configuration, result types, and the
//! bounded top-K heap used during scanning.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Coarse-quantizer (IVF) configuration.
#[derive(Clone, Debug)]
pub struct IvfConfig {
    /// Number of KMeans buckets. The paper uses 4096 at million scale
    /// (Faiss guidance ≈ 4√N).
    pub n_clusters: usize,
    /// Lloyd iterations for the coarse quantizer.
    pub kmeans_iters: usize,
    /// Training-sample cap for the coarse quantizer.
    pub kmeans_sample: Option<usize>,
    /// Worker threads for building (assignment + encoding).
    pub threads: usize,
    /// Seed for the coarse quantizer.
    pub seed: u64,
}

impl IvfConfig {
    /// A default sized for ~10⁵-vector experiments.
    pub fn new(n_clusters: usize) -> Self {
        Self {
            n_clusters,
            kmeans_iters: 10,
            kmeans_sample: Some(50_000),
            threads: 1,
            seed: 0x1F5,
        }
    }

    /// Faiss-style cluster-count rule of thumb: `≈ 4√N`.
    pub fn clusters_for(n: usize) -> usize {
        ((n as f64).sqrt() * 4.0).round().max(1.0) as usize
    }
}

/// How candidates surfaced by the quantized scan become final results.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RerankStrategy {
    /// RaBitQ's rule (Section 4): compute the exact distance for a
    /// candidate iff its distance *lower bound* beats the current K-th
    /// best exact distance. No tuning parameter.
    ErrorBound,
    /// [`RerankStrategy::ErrorBound`] with an explicit confidence
    /// parameter `ε₀` overriding the quantizer's configured value — the
    /// Figure 5 verification sweep.
    ErrorBoundWithEpsilon(f32),
    /// PQ-style: collect everything, sort by estimated distance, re-rank
    /// the best `n` exactly. The paper sweeps n ∈ {500, 1000, 2500}.
    TopCandidates(usize),
    /// No re-ranking: rank purely by estimated distances (Figure 10's
    /// ablation).
    None,
}

/// Result of one ANN query, with scan accounting for the harness.
#[derive(Clone, Debug, Default)]
pub struct SearchResult {
    /// `(id, squared distance)` ascending. Distances are exact under
    /// re-ranking strategies and estimated under [`RerankStrategy::None`].
    pub neighbors: Vec<(u32, f32)>,
    /// Candidates whose distance was estimated from codes.
    pub n_estimated: usize,
    /// Candidates re-ranked with an exact distance computation.
    pub n_reranked: usize,
    /// Per-stage wall-time breakdown of this query (all zeros on paths
    /// that don't trace, e.g. the PQ baseline).
    pub stages: rabitq_metrics::StageNanos,
}

/// Max-heap entry for the bounded top-K (worst on top).
#[derive(PartialEq)]
struct HeapEntry(f32, u32);

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .total_cmp(&other.0)
            .then_with(|| self.1.cmp(&other.1))
    }
}

/// A bounded max-heap tracking the K smallest distances seen so far.
pub struct TopK {
    k: usize,
    heap: BinaryHeap<HeapEntry>,
}

impl TopK {
    /// Creates a tracker for the `k` smallest entries.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Current K-th best distance (∞ while fewer than K entries).
    #[inline]
    pub fn threshold(&self) -> f32 {
        if self.heap.len() < self.k {
            f32::INFINITY
        } else {
            self.heap.peek().map_or(f32::INFINITY, |e| e.0)
        }
    }

    /// Offers a candidate; keeps it only if it beats the threshold.
    #[inline]
    pub fn push(&mut self, id: u32, dist: f32) {
        if self.heap.len() < self.k {
            self.heap.push(HeapEntry(dist, id));
        } else if let Some(top) = self.heap.peek() {
            if dist < top.0 {
                self.heap.pop();
                self.heap.push(HeapEntry(dist, id));
            }
        }
    }

    /// Number of entries currently held.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no entries are held.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Extracts the entries, ascending by distance.
    pub fn into_sorted(self) -> Vec<(u32, f32)> {
        let mut out: Vec<(u32, f32)> = self
            .heap
            .into_iter()
            .map(|HeapEntry(d, id)| (id, d))
            .collect();
        out.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Re-arms the tracker for a new query with bound `k`, keeping the
    /// heap's storage. After the first query at a given `k` this performs
    /// no heap allocation.
    pub fn reset(&mut self, k: usize) {
        self.k = k;
        self.heap.clear();
        self.heap.reserve(k + 1);
    }

    /// [`TopK::into_sorted`] into a reused output buffer, leaving the
    /// tracker empty but with its storage intact (ready for
    /// [`TopK::reset`]). Ordering is identical to `into_sorted`:
    /// ascending by distance, ties by id.
    pub fn drain_sorted_into(&mut self, out: &mut Vec<(u32, f32)>) {
        out.clear();
        let mut entries = std::mem::take(&mut self.heap).into_vec();
        entries.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        out.extend(entries.iter().map(|&HeapEntry(d, id)| (id, d)));
        // Hand the (now cleared) storage back to the heap: `from` on an
        // empty vec is a free heapify, so the allocation survives.
        entries.clear();
        self.heap = BinaryHeap::from(entries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topk_keeps_the_k_smallest() {
        let mut t = TopK::new(3);
        for (id, d) in [(0u32, 5.0f32), (1, 1.0), (2, 4.0), (3, 2.0), (4, 3.0)] {
            t.push(id, d);
        }
        let got = t.into_sorted();
        assert_eq!(got, vec![(1, 1.0), (3, 2.0), (4, 3.0)]);
    }

    #[test]
    fn threshold_is_infinite_until_full() {
        let mut t = TopK::new(2);
        assert_eq!(t.threshold(), f32::INFINITY);
        t.push(0, 1.0);
        assert_eq!(t.threshold(), f32::INFINITY);
        t.push(1, 2.0);
        assert_eq!(t.threshold(), 2.0);
        t.push(2, 0.5);
        assert_eq!(t.threshold(), 1.0);
    }

    #[test]
    fn duplicate_distances_are_kept_deterministically() {
        let mut t = TopK::new(2);
        t.push(7, 1.0);
        t.push(3, 1.0);
        t.push(9, 1.0);
        let got = t.into_sorted();
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|&(_, d)| d == 1.0));
    }

    #[test]
    fn drain_matches_into_sorted_and_reuses_storage() {
        let entries = [(0u32, 5.0f32), (1, 1.0), (2, 4.0), (3, 2.0), (4, 3.0)];
        let mut a = TopK::new(3);
        let mut b = TopK::new(3);
        for &(id, d) in &entries {
            a.push(id, d);
            b.push(id, d);
        }
        let want = a.into_sorted();
        let mut got = Vec::new();
        b.drain_sorted_into(&mut got);
        assert_eq!(got, want);
        // Reset re-arms the same tracker for a fresh query.
        b.reset(2);
        assert_eq!(b.threshold(), f32::INFINITY);
        b.push(9, 0.5);
        b.push(8, 0.25);
        b.drain_sorted_into(&mut got);
        assert_eq!(got, vec![(8, 0.25), (9, 0.5)]);
    }

    #[test]
    fn clusters_rule_of_thumb() {
        assert_eq!(IvfConfig::clusters_for(1_000_000), 4000);
        assert_eq!(IvfConfig::clusters_for(1), 4);
    }
}
