//! # rabitq-ivf — in-memory ANN indexes
//!
//! The application layer of the paper (Section 4): inverted-file indexes
//! pairing a KMeans coarse quantizer with
//!
//! * [`IvfRabitq`] — RaBitQ codes per bucket, the rotate-once query path,
//!   and **error-bound-based re-ranking** (no tuning parameter);
//! * [`IvfPq`] — the PQ/OPQ baseline with residual encoding, f32 or
//!   u8-fast-scan LUT scans, and conventional fixed-count re-ranking.

pub mod cancel;
pub mod common;
pub mod flat;
pub mod mips;
pub mod pq_ivf;
pub mod rabitq_ivf;

pub use cancel::CancelToken;
pub use common::{IvfConfig, RerankStrategy, SearchResult, TopK};
pub use flat::{FlatRabitq, RangeResult};
pub use mips::{FlatMips, MipsResult};
pub use pq_ivf::{IvfPq, PqVariant, ScanMode};
pub use rabitq_ivf::{IvfRabitq, SearchScratch};
