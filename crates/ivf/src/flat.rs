//! A flat (single-bucket) RaBitQ index: every code is scanned for every
//! query, with the same error-bound re-ranking as the IVF index.
//!
//! This is the right tool below ~10⁵ vectors, where a coarse quantizer
//! buys little, and it is the exact protocol of the paper's Figure 5
//! verification (estimate everything, re-rank by the bound). Vectors are
//! normalized against their mean, the natural single-centroid choice of
//! Section 3.1.1.

use crate::common::{RerankStrategy, SearchResult, TopK};
use rabitq_core::{CodeSet, PackedCodes, Rabitq, RabitqConfig};
use rabitq_math::vecs;
use rand::Rng;

/// A flat RaBitQ index over owned vectors.
pub struct FlatRabitq {
    dim: usize,
    quantizer: Rabitq,
    centroid: Vec<f32>,
    codes: CodeSet,
    packed: PackedCodes,
    data: Vec<f32>,
}

impl FlatRabitq {
    /// Builds the index over a flat `n × dim` buffer, normalizing against
    /// the data mean.
    pub fn build(data: &[f32], dim: usize, config: RabitqConfig) -> Self {
        assert!(dim > 0 && data.len().is_multiple_of(dim), "data shape");
        let n = data.len() / dim;
        assert!(n > 0, "cannot index an empty dataset");
        let mut centroid = vec![0.0f32; dim];
        for row in data.chunks_exact(dim) {
            vecs::add_assign(&mut centroid, row);
        }
        vecs::scale(&mut centroid, 1.0 / n as f32);

        let quantizer = Rabitq::new(dim, config);
        let codes = quantizer.encode_set(data.chunks_exact(dim), &centroid);
        let packed = quantizer.pack(&codes);
        Self {
            dim,
            quantizer,
            centroid,
            codes,
            packed,
            data: data.to_vec(),
        }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The underlying quantizer.
    #[inline]
    pub fn quantizer(&self) -> &Rabitq {
        &self.quantizer
    }

    /// K-NN search with error-bound re-ranking.
    pub fn search<R: Rng + ?Sized>(&self, query: &[f32], k: usize, rng: &mut R) -> SearchResult {
        self.search_filtered(query, k, RerankStrategy::ErrorBound, |_| true, rng)
    }

    /// K-NN search restricted to ids accepted by `filter` — the standard
    /// "filtered vector search" shape (metadata predicates). Rejected ids
    /// cost one bit-kernel evaluation and nothing else.
    pub fn search_filtered<R: Rng + ?Sized, F: FnMut(u32) -> bool>(
        &self,
        query: &[f32],
        k: usize,
        strategy: RerankStrategy,
        mut filter: F,
        rng: &mut R,
    ) -> SearchResult {
        assert_eq!(query.len(), self.dim, "query dimensionality");
        if self.is_empty() || k == 0 {
            return SearchResult::default();
        }
        let prepared = self.quantizer.prepare_query(query, &self.centroid, rng);
        let mut estimates = Vec::new();
        let epsilon0 = match strategy {
            RerankStrategy::ErrorBoundWithEpsilon(e) => e,
            _ => self.quantizer.config().epsilon0,
        };
        self.quantizer.estimate_batch_with_epsilon(
            &prepared,
            &self.packed,
            &self.codes,
            epsilon0,
            &mut estimates,
        );
        let n_estimated = estimates.len();
        let mut n_reranked = 0usize;
        let mut top = TopK::new(k);
        match strategy {
            RerankStrategy::ErrorBound | RerankStrategy::ErrorBoundWithEpsilon(_) => {
                for (i, est) in estimates.iter().enumerate() {
                    if !filter(i as u32) {
                        continue;
                    }
                    if est.lower_bound < top.threshold() {
                        let exact = self.exact_distance(i as u32, query);
                        n_reranked += 1;
                        top.push(i as u32, exact);
                    }
                }
            }
            RerankStrategy::TopCandidates(r) => {
                let mut pool: Vec<(u32, f32)> = estimates
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| filter(i as u32))
                    .map(|(i, est)| (i as u32, est.dist_sq))
                    .collect();
                let take = r.max(k).min(pool.len());
                if take > 0 {
                    pool.select_nth_unstable_by(take - 1, |a, b| a.1.total_cmp(&b.1));
                    pool.truncate(take);
                }
                for &(id, _) in &pool {
                    let exact = self.exact_distance(id, query);
                    n_reranked += 1;
                    top.push(id, exact);
                }
            }
            RerankStrategy::None => {
                for (i, est) in estimates.iter().enumerate() {
                    if filter(i as u32) {
                        top.push(i as u32, est.dist_sq);
                    }
                }
            }
        }
        SearchResult {
            neighbors: top.into_sorted(),
            n_estimated,
            n_reranked,
            stages: Default::default(),
        }
    }

    /// Range query: every id whose squared distance to `query` is at most
    /// `radius_sq`, ascending by distance.
    ///
    /// Both sides of the confidence interval do work here (Section 3.2.2's
    /// bound used in its dual directions): a candidate whose **lower**
    /// bound exceeds the radius is certified *outside* and dropped; one
    /// whose **upper** bound is within the radius is certified *inside*
    /// and admitted **without touching the raw vector** (its reported
    /// distance is then the unbiased estimate — see
    /// [`RangeResult::n_certified`]). Only the candidates whose interval
    /// straddles the radius pay an exact distance computation.
    ///
    /// The certificates inherit the bound's `1 − 2exp(−c₀ε₀²)` confidence:
    /// with the default `ε₀ = 1.9` a certificate is wrong with probability
    /// ≈ 10⁻³ per candidate.
    pub fn range_search<R: Rng + ?Sized>(
        &self,
        query: &[f32],
        radius_sq: f32,
        rng: &mut R,
    ) -> RangeResult {
        assert_eq!(query.len(), self.dim, "query dimensionality");
        assert!(radius_sq >= 0.0, "radius must be nonnegative");
        if self.is_empty() {
            return RangeResult::default();
        }
        let prepared = self.quantizer.prepare_query(query, &self.centroid, rng);
        let mut estimates = Vec::new();
        self.quantizer
            .estimate_batch(&prepared, &self.packed, &self.codes, &mut estimates);

        let mut result = RangeResult {
            n_estimated: estimates.len(),
            ..RangeResult::default()
        };
        for (i, est) in estimates.iter().enumerate() {
            if est.lower_bound > radius_sq {
                continue; // certified outside
            }
            if est.upper_bound <= radius_sq {
                result.n_certified += 1;
                result.neighbors.push((i as u32, est.dist_sq));
                continue; // certified inside, raw vector untouched
            }
            let exact = self.exact_distance(i as u32, query);
            result.n_reranked += 1;
            if exact <= radius_sq {
                result.neighbors.push((i as u32, exact));
            }
        }
        result
            .neighbors
            .sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        result
    }

    #[inline]
    fn exact_distance(&self, id: u32, query: &[f32]) -> f32 {
        let base = id as usize * self.dim;
        vecs::l2_sq(&self.data[base..base + self.dim], query)
    }
}

/// Result of a range query, with certification accounting.
#[derive(Clone, Debug, Default)]
pub struct RangeResult {
    /// `(id, squared distance)` ascending. Distances are exact for
    /// candidates that were verified exactly and unbiased estimates for
    /// bound-certified ones.
    pub neighbors: Vec<(u32, f32)>,
    /// Codes scanned.
    pub n_estimated: usize,
    /// Candidates whose interval straddled the radius and required an
    /// exact distance.
    pub n_reranked: usize,
    /// Candidates admitted purely by the upper bound, with no raw-vector
    /// access.
    pub n_certified: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabitq_data::{exact_knn, generate, DatasetSpec, Profile};
    use rabitq_metrics::recall_at_k;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset(n: usize, dim: usize) -> rabitq_data::Dataset {
        generate(&DatasetSpec {
            name: "flat-test".into(),
            dim,
            n,
            n_queries: 10,
            profile: Profile::Clustered {
                clusters: 8,
                cluster_std: 0.7,
                center_scale: 2.5,
            },
            seed: 3,
        })
    }

    #[test]
    fn flat_search_reaches_near_perfect_recall() {
        let ds = dataset(2_000, 48);
        let index = FlatRabitq::build(&ds.data, ds.dim, RabitqConfig::default());
        let gt = exact_knn(&ds.data, ds.dim, &ds.queries, 10, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let mut total = 0.0;
        for qi in 0..ds.n_queries() {
            let res = index.search(ds.query(qi), 10, &mut rng);
            let got: Vec<u32> = res.neighbors.iter().map(|&(id, _)| id).collect();
            let want: Vec<u32> = gt[qi].iter().map(|&(id, _)| id).collect();
            total += recall_at_k(&want, &got);
        }
        assert!(total / ds.n_queries() as f64 > 0.99);
    }

    #[test]
    fn filter_excludes_ids_from_results() {
        let ds = dataset(500, 24);
        let index = FlatRabitq::build(&ds.data, ds.dim, RabitqConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        // Only even ids pass the predicate.
        let res = index.search_filtered(
            ds.query(0),
            10,
            RerankStrategy::ErrorBound,
            |id| id % 2 == 0,
            &mut rng,
        );
        assert_eq!(res.neighbors.len(), 10);
        assert!(res.neighbors.iter().all(|&(id, _)| id % 2 == 0));
        // And it must find the best even ids: compare against filtered
        // brute force.
        let mut brute: Vec<(u32, f32)> = (0..ds.n() as u32)
            .filter(|id| id % 2 == 0)
            .map(|id| {
                (
                    id,
                    rabitq_math::vecs::l2_sq(ds.vector(id as usize), ds.query(0)),
                )
            })
            .collect();
        brute.sort_by(|a, b| a.1.total_cmp(&b.1));
        let want: Vec<u32> = brute[..10].iter().map(|&(id, _)| id).collect();
        let got: Vec<u32> = res.neighbors.iter().map(|&(id, _)| id).collect();
        assert!(recall_at_k(&want, &got) >= 0.9);
    }

    #[test]
    fn rejecting_everything_returns_nothing() {
        let ds = dataset(200, 16);
        let index = FlatRabitq::build(&ds.data, ds.dim, RabitqConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        let res = index.search_filtered(
            ds.query(0),
            5,
            RerankStrategy::ErrorBound,
            |_| false,
            &mut rng,
        );
        assert!(res.neighbors.is_empty());
        assert_eq!(res.n_reranked, 0);
    }

    #[test]
    fn range_search_matches_brute_force() {
        let ds = dataset(1_500, 48);
        let index = FlatRabitq::build(&ds.data, ds.dim, RabitqConfig::default());
        let mut rng = StdRng::seed_from_u64(5);
        for qi in 0..5 {
            let query = ds.query(qi);
            // Radius = distance of the ~30th neighbor, so the answer set
            // is non-trivial on both sides.
            let mut dists: Vec<f32> = (0..ds.n())
                .map(|i| rabitq_math::vecs::l2_sq(ds.vector(i), query))
                .collect();
            dists.sort_by(|a, b| a.total_cmp(b));
            let radius_sq = dists[30];
            let want: std::collections::HashSet<u32> = (0..ds.n() as u32)
                .filter(|&id| rabitq_math::vecs::l2_sq(ds.vector(id as usize), query) <= radius_sq)
                .collect();
            let res = index.range_search(query, radius_sq, &mut rng);
            let got: std::collections::HashSet<u32> =
                res.neighbors.iter().map(|&(id, _)| id).collect();
            // Certificates are probabilistic (ε₀ = 1.9 ⇒ ~10⁻³ per
            // candidate); allow a one-off symmetric difference.
            let diff = want.symmetric_difference(&got).count();
            assert!(
                diff <= 1,
                "query {qi}: |want|={}, |got|={}, diff={diff}",
                want.len(),
                got.len()
            );
            assert!(res.neighbors.windows(2).all(|w| w[0].1 <= w[1].1));
        }
    }

    #[test]
    fn range_search_certifies_without_raw_access() {
        let ds = dataset(2_000, 128);
        let index = FlatRabitq::build(&ds.data, ds.dim, RabitqConfig::default());
        let mut rng = StdRng::seed_from_u64(6);
        let query = ds.query(0);
        let mut dists: Vec<f32> = (0..ds.n())
            .map(|i| rabitq_math::vecs::l2_sq(ds.vector(i), query))
            .collect();
        dists.sort_by(|a, b| a.total_cmp(b));
        // A generous radius (500th neighbor): most of the answer set is
        // deep inside and must be certified by the upper bound alone.
        let res = index.range_search(query, dists[500], &mut rng);
        assert!(res.neighbors.len() >= 450);
        assert!(
            res.n_certified > res.neighbors.len() / 2,
            "certified {} of {} results",
            res.n_certified,
            res.neighbors.len()
        );
        // The far tail is certified *outside* by the lower bound and never
        // verified: estimated = certified-in + exactly-verified + dropped.
        let dropped = res.n_estimated - res.n_reranked - res.n_certified;
        assert!(
            dropped > 0,
            "some of the {} codes must be bound-dropped",
            ds.n()
        );
    }

    #[test]
    fn range_search_edge_radii() {
        let ds = dataset(300, 24);
        let index = FlatRabitq::build(&ds.data, ds.dim, RabitqConfig::default());
        let mut rng = StdRng::seed_from_u64(7);
        // Radius 0 from a stored vector: finds (at least) itself.
        let res = index.range_search(ds.vector(42), 0.0, &mut rng);
        assert!(res.neighbors.iter().any(|&(id, _)| id == 42));
        // Infinite radius: everything, certified without exact distances.
        let res = index.range_search(ds.query(0), f32::INFINITY, &mut rng);
        assert_eq!(res.neighbors.len(), ds.n());
        assert_eq!(res.n_reranked, 0);
    }

    #[test]
    fn flat_matches_ivf_at_full_probe() {
        let ds = dataset(800, 32);
        let flat = FlatRabitq::build(&ds.data, ds.dim, RabitqConfig::default());
        let ivf = crate::IvfRabitq::build(
            &ds.data,
            ds.dim,
            &crate::IvfConfig::new(6),
            RabitqConfig::default(),
        );
        let mut rng = StdRng::seed_from_u64(4);
        for qi in 0..ds.n_queries() {
            let a = flat.search(ds.query(qi), 5, &mut rng);
            let b = ivf.search(ds.query(qi), 5, 6, &mut rng);
            // Different bucketing ⇒ different estimates, but the exact
            // re-ranked top-5 should agree except for rare bound misses.
            let ids_a: Vec<u32> = a.neighbors.iter().map(|&(id, _)| id).collect();
            let ids_b: Vec<u32> = b.neighbors.iter().map(|&(id, _)| id).collect();
            let overlap = ids_a.iter().filter(|id| ids_b.contains(id)).count();
            assert!(overlap >= 4, "query {qi}: {ids_a:?} vs {ids_b:?}");
        }
    }
}
