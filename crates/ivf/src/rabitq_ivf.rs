//! IVF + RaBitQ — the in-memory ANN index of Section 4.
//!
//! **Index phase**: KMeans buckets the raw vectors; within each bucket the
//! vectors are normalized against the bucket centroid and RaBitQ-encoded;
//! codes are additionally packed for the batch fast-scan kernel.
//!
//! **Query phase**: the query is rotated *once* (`P⁻¹q_r`); each probed
//! bucket then derives its residual in rotated space from a pre-rotated
//! centroid (an O(B) subtraction instead of an O(B²) rotation), quantizes
//! it, fast-scans the bucket's packed codes, and re-ranks by the paper's
//! error-bound rule: a candidate's exact distance is computed iff its
//! distance lower bound beats the current K-th best exact distance. With
//! `ε₀ = 1.9` the true nearest neighbors of the probed buckets reach
//! re-ranking with near-certainty — no tuning parameter exists.

use crate::cancel::CancelToken;
use crate::common::{IvfConfig, RerankStrategy, SearchResult, TopK};
use rabitq_core::{CodeSet, DistanceEstimate, PackedCodes, QueryScratch, Rabitq, RabitqConfig};
use rabitq_kmeans::{train as kmeans_train, KMeans, KMeansConfig};
use rabitq_math::vecs;
use rabitq_metrics::{Stage, StageNanos};
use rand::Rng;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// One IVF bucket: original vector ids plus their RaBitQ codes.
struct Bucket {
    ids: Vec<u32>,
    codes: CodeSet,
    packed: PackedCodes,
}

/// The IVF-RaBitQ index.
pub struct IvfRabitq {
    dim: usize,
    quantizer: Rabitq,
    coarse: KMeans,
    /// `P⁻¹·c` per centroid, enabling the rotate-once query path.
    rotated_centroids: Vec<f32>,
    buckets: Vec<Bucket>,
    /// Owned copy of the raw vectors for exact re-ranking.
    data: Vec<f32>,
    /// Tombstone bitmap, one bit per id. Deleted ids stay encoded in their
    /// buckets (so the fast-scan pack is untouched) but are skipped by every
    /// search path; compaction (in `rabitq-store`) reclaims the space.
    ///
    /// The words are atomic so [`IvfRabitq::remove`] takes `&self`: a
    /// sealed segment shared behind an `Arc` can tombstone rows while
    /// concurrent readers search it. Setting a bit is monotonic, so a racy
    /// read just sees the state a moment earlier or later — both valid.
    deleted: Vec<AtomicU64>,
    /// Number of set bits in `deleted`.
    n_deleted: AtomicUsize,
}

/// Reusable per-thread buffers for [`IvfRabitq::search_into`]: every heap
/// allocation the query path would otherwise make per call (or worse, per
/// probed bucket) lives here and is overwritten in place. One scratch
/// serves one search thread; at steady state (after the buffers have grown
/// to the workload's shape) a search performs **zero heap allocations**.
pub struct SearchScratch {
    /// `P⁻¹·q`, computed once per query.
    rotated_query: Vec<f32>,
    /// Per-probe residual + quantized query + LUT (see
    /// [`rabitq_core::QueryScratch`]).
    query: QueryScratch,
    /// The `nprobe` nearest coarse centroids.
    probes: Vec<(usize, f32)>,
    /// Per-bucket batch estimates.
    estimates: Vec<DistanceEstimate>,
    /// Candidate pool for [`RerankStrategy::TopCandidates`].
    pool: Vec<(u32, f32)>,
    /// Bounded top-K tracker (heap storage reused across queries).
    top: TopK,
    /// Neighbors of the most recent [`IvfRabitq::search_into`] call:
    /// `(id, squared distance)` ascending, same contract as
    /// [`SearchResult::neighbors`]. Public so engine layers (e.g. segment
    /// id remapping in `rabitq-store`) can rewrite ids in place.
    pub neighbors: Vec<(u32, f32)>,
    /// Stage breakdown of the most recent [`IvfRabitq::search_into`] call
    /// (`Copy`, fixed-size — no allocation). Engine layers accumulate it
    /// per query across segments and feed the global stage timers.
    pub stages: StageNanos,
}

impl SearchScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self {
            rotated_query: Vec::new(),
            query: QueryScratch::new(),
            probes: Vec::new(),
            estimates: Vec::new(),
            pool: Vec::new(),
            top: TopK::new(0),
            neighbors: Vec::new(),
            stages: StageNanos::new(),
        }
    }
}

impl Default for SearchScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Closes one traced stage: charges the time since `since` to `stage` and
/// returns the boundary instant for the next stage. Two clock reads per
/// stage transition, nothing else — the only cost tracing adds to the hot
/// path.
#[inline]
fn lap(stages: &mut StageNanos, stage: Stage, since: Instant) -> Instant {
    let now = Instant::now();
    stages.add_ns(
        stage,
        now.duration_since(since)
            .as_nanos()
            .min(u128::from(u64::MAX)) as u64,
    );
    now
}

impl IvfRabitq {
    /// Builds the index over a flat `n × dim` buffer.
    pub fn build(data: &[f32], dim: usize, ivf: &IvfConfig, rabitq: RabitqConfig) -> Self {
        assert!(dim > 0 && data.len().is_multiple_of(dim), "data shape");
        let n = data.len() / dim;
        assert!(n > 0, "cannot index an empty dataset");

        let mut km_cfg = KMeansConfig::new(ivf.n_clusters.min(n));
        km_cfg.max_iters = ivf.kmeans_iters;
        km_cfg.seed = ivf.seed;
        km_cfg.training_sample = ivf.kmeans_sample;
        km_cfg.threads = ivf.threads;
        let coarse = kmeans_train(data, dim, &km_cfg);

        let quantizer = Rabitq::new(dim, rabitq);
        let padded = quantizer.padded_dim();

        // Pre-rotate every centroid once.
        let mut rotated_centroids = vec![0.0f32; coarse.k() * padded];
        for c in 0..coarse.k() {
            let rc = quantizer.rotate(coarse.centroid(c));
            rotated_centroids[c * padded..(c + 1) * padded].copy_from_slice(&rc);
        }

        // Assign and encode per bucket. Encoding dominates the build (one
        // O(D·B) rotation per vector), so buckets are distributed over the
        // configured worker threads.
        let assignment = coarse.assign_all(data, ivf.threads);
        let mut ids_per_bucket: Vec<Vec<u32>> = vec![Vec::new(); coarse.k()];
        for (i, &c) in assignment.iter().enumerate() {
            ids_per_bucket[c as usize].push(i as u32);
        }
        let encode_bucket = |c: usize, ids: Vec<u32>| -> Bucket {
            let centroid = coarse.centroid(c);
            let mut codes = quantizer.new_code_set();
            for &id in &ids {
                quantizer.encode_into(
                    &data[id as usize * dim..(id as usize + 1) * dim],
                    centroid,
                    &mut codes,
                );
            }
            let packed = quantizer.pack(&codes);
            Bucket { ids, codes, packed }
        };
        let buckets: Vec<Bucket> = if ivf.threads <= 1 || coarse.k() < 2 {
            ids_per_bucket
                .into_iter()
                .enumerate()
                .map(|(c, ids)| encode_bucket(c, ids))
                .collect()
        } else {
            // Round-robin bucket batches across threads; order restored by
            // indexed writes.
            let jobs: Vec<(usize, Vec<u32>)> = ids_per_bucket.into_iter().enumerate().collect();
            let mut slots: Vec<Option<Bucket>> = (0..jobs.len()).map(|_| None).collect();
            let threads = ivf.threads.min(jobs.len());
            std::thread::scope(|scope| {
                let mut remaining_jobs: &[(usize, Vec<u32>)] = &jobs;
                let mut remaining_slots: &mut [Option<Bucket>] = &mut slots;
                let per = jobs.len().div_ceil(threads);
                for _ in 0..threads {
                    let take = per.min(remaining_jobs.len());
                    if take == 0 {
                        break;
                    }
                    let (my_jobs, rest_jobs) = remaining_jobs.split_at(take);
                    remaining_jobs = rest_jobs;
                    let (my_slots, rest_slots) = remaining_slots.split_at_mut(take);
                    remaining_slots = rest_slots;
                    let encode_ref = &encode_bucket;
                    scope.spawn(move || {
                        for ((c, ids), slot) in my_jobs.iter().zip(my_slots.iter_mut()) {
                            *slot = Some(encode_ref(*c, ids.clone()));
                        }
                    });
                }
            });
            slots
                .into_iter()
                .map(|b| b.expect("every bucket encoded"))
                .collect()
        };

        Self {
            dim,
            quantizer,
            coarse,
            rotated_centroids,
            buckets,
            data: data.to_vec(),
            deleted: (0..n.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(),
            n_deleted: AtomicUsize::new(0),
        }
    }

    /// Number of indexed vector slots, live and tombstoned alike. Ids are
    /// never reused, so this is also one past the largest assigned id.
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of live (non-tombstoned) vectors.
    #[inline]
    pub fn n_live(&self) -> usize {
        self.len() - self.n_deleted()
    }

    /// Number of tombstoned vectors.
    #[inline]
    pub fn n_deleted(&self) -> usize {
        self.n_deleted.load(Ordering::Relaxed)
    }

    /// Whether `id` is tombstoned. Ids past the end count as deleted so
    /// callers can treat "never existed" and "removed" uniformly.
    #[inline]
    pub fn is_deleted(&self, id: u32) -> bool {
        let idx = id as usize;
        if idx >= self.len() {
            return true;
        }
        self.deleted[idx / 64].load(Ordering::Relaxed) >> (idx % 64) & 1 == 1
    }

    /// Tombstones one vector. Its code stays in place (the fast-scan pack
    /// is untouched) but every search path skips it from now on; the space
    /// is reclaimed when the index is rebuilt (e.g. by `rabitq-store`
    /// compaction). Returns `false` if the id is out of range or already
    /// tombstoned.
    ///
    /// Takes `&self`: the bitmap is atomic, so an index shared behind an
    /// `Arc` (a sealed `rabitq-store` segment) can be tombstoned while
    /// other threads search it.
    pub fn remove(&self, id: u32) -> bool {
        let idx = id as usize;
        if idx >= self.len() {
            return false;
        }
        let mask = 1u64 << (idx % 64);
        let prev = self.deleted[idx / 64].fetch_or(mask, Ordering::Relaxed);
        if prev & mask != 0 {
            return false; // already tombstoned (possibly by a racing caller)
        }
        self.n_deleted.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// The raw vector stored under `id` (tombstoned or not).
    #[inline]
    pub fn vector(&self, id: u32) -> &[f32] {
        let base = id as usize * self.dim;
        &self.data[base..base + self.dim]
    }

    /// Vector dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The underlying quantizer (exposed for experiments).
    #[inline]
    pub fn quantizer(&self) -> &Rabitq {
        &self.quantizer
    }

    /// Number of buckets.
    #[inline]
    pub fn n_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Searches with the paper's error-bound re-ranking.
    pub fn search<R: Rng + ?Sized>(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
        rng: &mut R,
    ) -> SearchResult {
        self.search_with(query, k, nprobe, RerankStrategy::ErrorBound, rng)
    }

    /// Searches with an explicit re-ranking strategy (used by the Figure 10
    /// ablation and the baseline comparisons).
    ///
    /// Thin wrapper over [`IvfRabitq::search_into`] with a throwaway
    /// [`SearchScratch`] — one scratch allocation per call instead of the
    /// historical per-probed-bucket allocations. Serving layers that care
    /// about the allocator (e.g. `rabitq-store`) hold a scratch per thread
    /// and call `search_into` directly.
    pub fn search_with<R: Rng + ?Sized>(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
        strategy: RerankStrategy,
        rng: &mut R,
    ) -> SearchResult {
        let mut scratch = SearchScratch::new();
        let (n_estimated, n_reranked) =
            self.search_into(query, k, nprobe, strategy, &mut scratch, rng);
        SearchResult {
            neighbors: std::mem::take(&mut scratch.neighbors),
            n_estimated,
            n_reranked,
            stages: scratch.stages,
        }
    }

    /// The allocation-free search core. Results land in
    /// [`SearchScratch::neighbors`] (`(id, squared distance)` ascending —
    /// the [`SearchResult`] contract); the return value is
    /// `(n_estimated, n_reranked)`. Once `scratch` has warmed up (its
    /// buffers reached the workload's shape), the steady-state query path
    /// performs **zero heap allocations** — verified by the
    /// counting-allocator test in `tests/alloc_free.rs`.
    pub fn search_into<R: Rng + ?Sized>(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
        strategy: RerankStrategy,
        scratch: &mut SearchScratch,
        rng: &mut R,
    ) -> (usize, usize) {
        self.search_into_cancellable(
            query,
            k,
            nprobe,
            strategy,
            scratch,
            rng,
            &CancelToken::none(),
        )
        .expect("a never-cancelling token cannot cancel")
    }

    /// [`IvfRabitq::search_into`] with cooperative cancellation: the
    /// token is polled at every probed-bucket boundary (the scan's
    /// natural checkpoint — coarse enough to stay off the per-code hot
    /// path, fine enough that an expired deadline stops the query within
    /// one bucket's worth of work). Returns `None` if the token
    /// cancelled before the scan finished; `scratch.neighbors` is then
    /// cleared (partial candidates are discarded, never returned) and
    /// `scratch.stages` holds the time spent up to the bail-out.
    ///
    /// A completed scan (`Some`) is bit-identical to [`IvfRabitq::search_into`]
    /// with the same RNG stream: the checkpoints only read the token.
    #[allow(clippy::too_many_arguments)]
    pub fn search_into_cancellable<R: Rng + ?Sized>(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
        strategy: RerankStrategy,
        scratch: &mut SearchScratch,
        rng: &mut R,
        cancel: &CancelToken,
    ) -> Option<(usize, usize)> {
        assert_eq!(query.len(), self.dim, "query dimensionality");
        scratch.neighbors.clear();
        scratch.stages.clear();
        if self.is_empty() || k == 0 {
            return Some((0, 0));
        }
        let padded = self.quantizer.padded_dim();
        // Stage tracing: `Instant::now()` is a vDSO clock read — no
        // syscall, no allocation — so the hot path stays allocation-free
        // with tracing always on (see `tests/alloc_free.rs`).
        let mut t = Instant::now();
        self.quantizer
            .rotate_into(query, &mut scratch.rotated_query);
        self.coarse
            .assign_top_n_into(query, nprobe.max(1), &mut scratch.probes);
        t = lap(&mut scratch.stages, Stage::Rotate, t);

        let mut n_estimated = 0usize;
        let mut n_reranked = 0usize;

        match strategy {
            RerankStrategy::ErrorBound | RerankStrategy::ErrorBoundWithEpsilon(_) => {
                let epsilon0 = match strategy {
                    RerankStrategy::ErrorBoundWithEpsilon(e) => e,
                    _ => self.quantizer.config().epsilon0,
                };
                scratch.top.reset(k);
                for pi in 0..scratch.probes.len() {
                    if cancel.is_cancelled() {
                        scratch.neighbors.clear();
                        return None;
                    }
                    let c = scratch.probes[pi].0;
                    let bucket = &self.buckets[c];
                    if bucket.ids.is_empty() {
                        continue;
                    }
                    let rc = &self.rotated_centroids[c * padded..(c + 1) * padded];
                    self.quantizer.prepare_query_prerotated_into(
                        &scratch.rotated_query,
                        rc,
                        &mut scratch.query,
                        rng,
                    );
                    t = lap(&mut scratch.stages, Stage::LutBuild, t);
                    self.quantizer.estimate_batch_with_lut(
                        scratch.query.query(),
                        scratch.query.lut(),
                        &bucket.packed,
                        &bucket.codes,
                        epsilon0,
                        &mut scratch.estimates,
                    );
                    t = lap(&mut scratch.stages, Stage::Scan, t);
                    n_estimated += scratch.estimates.len();
                    for (est, &id) in scratch.estimates.iter().zip(bucket.ids.iter()) {
                        if self.is_deleted(id) {
                            continue;
                        }
                        // The paper's rule: drop iff lower bound exceeds the
                        // current K-th best exact distance.
                        if est.lower_bound < scratch.top.threshold() {
                            let exact = self.exact_distance(id, query);
                            n_reranked += 1;
                            scratch.top.push(id, exact);
                        }
                    }
                    t = lap(&mut scratch.stages, Stage::Rerank, t);
                }
            }
            RerankStrategy::TopCandidates(rerank_n) => {
                scratch.pool.clear();
                for pi in 0..scratch.probes.len() {
                    if cancel.is_cancelled() {
                        scratch.neighbors.clear();
                        return None;
                    }
                    let c = scratch.probes[pi].0;
                    let bucket = &self.buckets[c];
                    if bucket.ids.is_empty() {
                        continue;
                    }
                    let rc = &self.rotated_centroids[c * padded..(c + 1) * padded];
                    self.quantizer.prepare_query_prerotated_into(
                        &scratch.rotated_query,
                        rc,
                        &mut scratch.query,
                        rng,
                    );
                    t = lap(&mut scratch.stages, Stage::LutBuild, t);
                    self.quantizer.estimate_batch_with_lut(
                        scratch.query.query(),
                        scratch.query.lut(),
                        &bucket.packed,
                        &bucket.codes,
                        self.quantizer.config().epsilon0,
                        &mut scratch.estimates,
                    );
                    n_estimated += scratch.estimates.len();
                    scratch.pool.extend(
                        scratch
                            .estimates
                            .iter()
                            .zip(bucket.ids.iter())
                            .filter(|&(_, &id)| !self.is_deleted(id))
                            .map(|(est, &id)| (id, est.dist_sq)),
                    );
                    t = lap(&mut scratch.stages, Stage::Scan, t);
                }
                let take = rerank_n.max(k).min(scratch.pool.len());
                if take > 0 {
                    scratch
                        .pool
                        .select_nth_unstable_by(take - 1, |a, b| a.1.total_cmp(&b.1));
                    scratch.pool.truncate(take);
                }
                scratch.top.reset(k);
                for pi in 0..scratch.pool.len() {
                    let id = scratch.pool[pi].0;
                    let exact = self.exact_distance(id, query);
                    n_reranked += 1;
                    scratch.top.push(id, exact);
                }
                t = lap(&mut scratch.stages, Stage::Rerank, t);
            }
            RerankStrategy::None => {
                scratch.top.reset(k);
                for pi in 0..scratch.probes.len() {
                    if cancel.is_cancelled() {
                        scratch.neighbors.clear();
                        return None;
                    }
                    let c = scratch.probes[pi].0;
                    let bucket = &self.buckets[c];
                    if bucket.ids.is_empty() {
                        continue;
                    }
                    let rc = &self.rotated_centroids[c * padded..(c + 1) * padded];
                    self.quantizer.prepare_query_prerotated_into(
                        &scratch.rotated_query,
                        rc,
                        &mut scratch.query,
                        rng,
                    );
                    t = lap(&mut scratch.stages, Stage::LutBuild, t);
                    self.quantizer.estimate_batch_with_lut(
                        scratch.query.query(),
                        scratch.query.lut(),
                        &bucket.packed,
                        &bucket.codes,
                        self.quantizer.config().epsilon0,
                        &mut scratch.estimates,
                    );
                    n_estimated += scratch.estimates.len();
                    for (est, &id) in scratch.estimates.iter().zip(bucket.ids.iter()) {
                        if !self.is_deleted(id) {
                            scratch.top.push(id, est.dist_sq);
                        }
                    }
                    t = lap(&mut scratch.stages, Stage::Scan, t);
                }
            }
        }
        scratch.top.drain_sorted_into(&mut scratch.neighbors);
        lap(&mut scratch.stages, Stage::Merge, t);
        Some((n_estimated, n_reranked))
    }

    #[inline]
    fn exact_distance(&self, id: u32, query: &[f32]) -> f32 {
        let base = id as usize * self.dim;
        vecs::l2_sq(&self.data[base..base + self.dim], query)
    }

    /// Inserts one vector into the index, returning its id. The vector is
    /// assigned to the nearest existing centroid (centroids are not
    /// re-trained — standard IVF practice for streaming ingest; rebuild
    /// periodically if the distribution drifts) and its bucket's fast-scan
    /// pack is refreshed.
    pub fn insert(&mut self, vector: &[f32]) -> u32 {
        assert_eq!(vector.len(), self.dim, "vector dimensionality");
        let id = self.len() as u32;
        let (c, _) = self.coarse.assign(vector);
        self.data.extend_from_slice(vector);
        let bucket = &mut self.buckets[c];
        self.quantizer
            .encode_into(vector, self.coarse.centroid(c), &mut bucket.codes);
        bucket.ids.push(id);
        bucket.packed = self.quantizer.pack(&bucket.codes);
        let words = self.len().div_ceil(64);
        if self.deleted.len() < words {
            self.deleted.resize_with(words, || AtomicU64::new(0));
        }
        id
    }

    /// Saves the index to a file (see [`IvfRabitq::write`]).
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        let file = std::fs::File::create(path)?;
        let mut w = std::io::BufWriter::new(file);
        self.write(&mut w)?;
        use std::io::Write;
        w.flush()
    }

    /// Serializes the index to any writer. The format persists the
    /// quantizer (with its sampled rotation), the coarse centroids, every
    /// bucket's ids and codes, the raw vectors (needed for exact
    /// re-ranking), and the tombstone bitmap; the fast-scan packing is
    /// cheap and rebuilt on read.
    pub fn write<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        use rabitq_core::persist as p;
        // v2 appends the tombstone bitmap; the section bump makes a v1
        // file fail with a clear version message instead of a surprise
        // EOF at the missing trailing field.
        p::write_header(w, "ivf-rabitq-v2")?;
        p::write_usize(w, self.dim)?;
        self.quantizer.write(w)?;
        p::write_f32_slice(w, self.coarse.centroids())?;
        p::write_f32_slice(w, &self.rotated_centroids)?;
        p::write_usize(w, self.buckets.len())?;
        for bucket in &self.buckets {
            p::write_u32_slice(w, &bucket.ids)?;
            bucket.codes.write(w)?;
        }
        p::write_f32_slice(w, &self.data)?;
        let deleted: Vec<u64> = self
            .deleted
            .iter()
            .map(|word| word.load(Ordering::Relaxed))
            .collect();
        p::write_u64_slice(w, &deleted)?;
        Ok(())
    }

    /// Loads an index written by [`IvfRabitq::save`].
    pub fn load(path: &std::path::Path) -> std::io::Result<Self> {
        let file = std::fs::File::open(path)?;
        let mut r = std::io::BufReader::new(file);
        Self::read(&mut r)
    }

    /// Deserializes an index written by [`IvfRabitq::write`].
    pub fn read<R: std::io::Read>(r: &mut R) -> std::io::Result<Self> {
        use rabitq_core::persist as p;
        let section = p::read_header(r)?;
        if section == "ivf-rabitq" {
            return Err(p::invalid(
                "this is a v1 ivf-rabitq file (no tombstone bitmap); rebuild \
                 the index with this version to load it",
            ));
        }
        if section != "ivf-rabitq-v2" {
            return Err(p::invalid(format!(
                "expected ivf-rabitq-v2 file, got {section:?}"
            )));
        }
        let dim = p::read_usize(r)?;
        let quantizer = Rabitq::read(&mut *r)?;
        if quantizer.dim() != dim {
            return Err(p::invalid("quantizer dimensionality mismatch"));
        }
        let centroids = p::read_f32_vec(&mut *r)?;
        if centroids.is_empty() || centroids.len() % dim != 0 {
            return Err(p::invalid("centroid buffer shape"));
        }
        let coarse = KMeans::from_centroids(centroids, dim);
        let rotated_centroids = p::read_f32_vec(&mut *r)?;
        if rotated_centroids.len() != coarse.k() * quantizer.padded_dim() {
            return Err(p::invalid("rotated centroid buffer shape"));
        }
        let n_buckets = p::read_usize(&mut *r)?;
        if n_buckets != coarse.k() {
            return Err(p::invalid("bucket count disagrees with centroids"));
        }
        let mut buckets = Vec::with_capacity(n_buckets);
        for _ in 0..n_buckets {
            let ids = p::read_u32_vec(&mut *r)?;
            let codes = CodeSet::read(&mut *r)?;
            if codes.len() != ids.len() || codes.padded_dim() != quantizer.padded_dim() {
                return Err(p::invalid("bucket codes disagree with ids"));
            }
            let packed = quantizer.pack(&codes);
            buckets.push(Bucket { ids, codes, packed });
        }
        let data = p::read_f32_vec(&mut *r)?;
        if data.len() % dim != 0 {
            return Err(p::invalid("raw data buffer shape"));
        }
        let n = data.len() / dim;
        let deleted = p::read_u64_vec(&mut *r)?;
        if deleted.len() != n.div_ceil(64) {
            return Err(p::invalid("tombstone bitmap shape"));
        }
        if let Some(last) = deleted.last() {
            if n % 64 != 0 && *last >> (n % 64) != 0 {
                return Err(p::invalid("tombstone bits past the last vector"));
            }
        }
        let n_deleted = deleted.iter().map(|w| w.count_ones() as usize).sum();
        Ok(Self {
            dim,
            quantizer,
            coarse,
            rotated_centroids,
            buckets,
            data,
            deleted: deleted.into_iter().map(AtomicU64::new).collect(),
            n_deleted: AtomicUsize::new(n_deleted),
        })
    }

    /// Total bit entropy of all stored codes divided by total code length —
    /// the Appendix E uniformity diagnostic (≈ 1.0 when normalization
    /// spreads vectors evenly on the hypersphere).
    pub fn normalized_code_entropy(&self) -> f64 {
        let mut entropy = 0.0f64;
        let mut weight = 0.0f64;
        for bucket in &self.buckets {
            if bucket.codes.is_empty() {
                continue;
            }
            let w = bucket.codes.len() as f64;
            entropy += bucket.codes.total_bit_entropy() / bucket.codes.padded_dim() as f64 * w;
            weight += w;
        }
        if weight == 0.0 {
            0.0
        } else {
            entropy / weight
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabitq_data::{exact_knn, generate, DatasetSpec, Profile};
    use rabitq_metrics::recall_at_k;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset(n: usize, dim: usize) -> rabitq_data::Dataset {
        generate(&DatasetSpec {
            name: "ivf-test".into(),
            dim,
            n,
            n_queries: 15,
            profile: Profile::Clustered {
                clusters: 12,
                cluster_std: 0.8,
                center_scale: 3.0,
            },
            seed: 11,
        })
    }

    fn build(ds: &rabitq_data::Dataset, clusters: usize) -> IvfRabitq {
        let ivf = IvfConfig::new(clusters);
        IvfRabitq::build(&ds.data, ds.dim, &ivf, RabitqConfig::default())
    }

    #[test]
    fn full_probe_with_bound_rerank_reaches_high_recall() {
        let ds = dataset(3000, 64);
        let index = build(&ds, 16);
        let gt = exact_knn(&ds.data, ds.dim, &ds.queries, 10, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let mut total = 0.0;
        for qi in 0..ds.n_queries() {
            let res = index.search(ds.query(qi), 10, 16, &mut rng);
            let got: Vec<u32> = res.neighbors.iter().map(|&(id, _)| id).collect();
            let want: Vec<u32> = gt[qi].iter().map(|&(id, _)| id).collect();
            total += recall_at_k(&want, &got);
        }
        let avg = total / ds.n_queries() as f64;
        // All buckets probed: the only possible misses are bound failures,
        // which at ε₀ = 1.9 are ≪ 1%.
        assert!(avg > 0.99, "average recall {avg}");
    }

    #[test]
    fn reranked_distances_are_exact() {
        let ds = dataset(500, 32);
        let index = build(&ds, 8);
        let mut rng = StdRng::seed_from_u64(2);
        let res = index.search(ds.query(0), 5, 8, &mut rng);
        for &(id, d) in &res.neighbors {
            let exact = vecs::l2_sq(ds.vector(id as usize), ds.query(0));
            assert!((d - exact).abs() < 1e-4, "id {id}: {d} vs {exact}");
        }
    }

    #[test]
    fn error_bound_rule_reranks_a_small_fraction() {
        let ds = dataset(4000, 64);
        let index = build(&ds, 20);
        let mut rng = StdRng::seed_from_u64(3);
        let res = index.search(ds.query(1), 10, 20, &mut rng);
        assert_eq!(res.n_estimated, 4000);
        // The bound should prune the vast majority of candidates.
        assert!(
            res.n_reranked < res.n_estimated / 2,
            "reranked {} of {}",
            res.n_reranked,
            res.n_estimated
        );
        assert!(res.n_reranked >= 10);
    }

    #[test]
    fn fewer_probes_scan_fewer_candidates() {
        let ds = dataset(2000, 32);
        let index = build(&ds, 16);
        let mut rng = StdRng::seed_from_u64(4);
        let little = index.search(ds.query(2), 5, 2, &mut rng);
        let lots = index.search(ds.query(2), 5, 16, &mut rng);
        assert!(little.n_estimated < lots.n_estimated);
    }

    #[test]
    fn strategies_agree_when_probing_everything_generously() {
        let ds = dataset(1000, 32);
        let index = build(&ds, 8);
        let mut rng = StdRng::seed_from_u64(5);
        let bound = index.search_with(ds.query(3), 5, 8, RerankStrategy::ErrorBound, &mut rng);
        let fixed = index.search_with(
            ds.query(3),
            5,
            8,
            RerankStrategy::TopCandidates(1000),
            &mut rng,
        );
        let a: Vec<u32> = bound.neighbors.iter().map(|&(id, _)| id).collect();
        let b: Vec<u32> = fixed.neighbors.iter().map(|&(id, _)| id).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn no_rerank_strategy_returns_estimates() {
        let ds = dataset(800, 32);
        let index = build(&ds, 8);
        let mut rng = StdRng::seed_from_u64(6);
        let res = index.search_with(ds.query(0), 5, 8, RerankStrategy::None, &mut rng);
        assert_eq!(res.n_reranked, 0);
        assert_eq!(res.neighbors.len(), 5);
    }

    #[test]
    fn code_entropy_is_near_one() {
        // Appendix E: with per-bucket normalization the code bits are
        // nearly unbiased coins.
        let ds = dataset(2000, 64);
        let index = build(&ds, 12);
        let h = index.normalized_code_entropy();
        assert!(h > 0.95, "normalized entropy {h}");
    }

    #[test]
    fn threaded_build_matches_single_threaded_build() {
        let ds = dataset(600, 16);
        let mut cfg1 = IvfConfig::new(8);
        cfg1.threads = 1;
        let mut cfg4 = IvfConfig::new(8);
        cfg4.threads = 4;
        let a = IvfRabitq::build(&ds.data, ds.dim, &cfg1, RabitqConfig::default());
        let b = IvfRabitq::build(&ds.data, ds.dim, &cfg4, RabitqConfig::default());
        let mut rng_a = StdRng::seed_from_u64(42);
        let mut rng_b = StdRng::seed_from_u64(42);
        for qi in 0..ds.n_queries() {
            let ra = a.search(ds.query(qi), 5, 8, &mut rng_a);
            let rb = b.search(ds.query(qi), 5, 8, &mut rng_b);
            assert_eq!(ra.neighbors, rb.neighbors, "query {qi}");
        }
    }

    #[test]
    fn inserted_vectors_are_immediately_searchable() {
        let ds = dataset(400, 16);
        let mut index = build(&ds, 4);
        let mut rng = StdRng::seed_from_u64(9);
        // Insert a vector identical to the query: it must come back as
        // the top result with distance ~0.
        let probe = ds.query(0).to_vec();
        let new_id = index.insert(&probe);
        assert_eq!(new_id as usize, 400);
        let res = index.search(&probe, 3, 4, &mut rng);
        assert_eq!(res.neighbors[0].0, new_id);
        assert!(res.neighbors[0].1 < 1e-6);
    }

    #[test]
    fn insert_matches_batch_build_semantics() {
        // Building over n vectors and building over n−10 then inserting 10
        // must agree on search results (same centroids ⇒ same codes).
        let ds = dataset(300, 16);
        let full = build(&ds, 4);
        let partial_data = &ds.data[..290 * 16];
        let ivf_cfg = IvfConfig::new(4);
        let mut incremental =
            IvfRabitq::build(partial_data, ds.dim, &ivf_cfg, RabitqConfig::default());
        for i in 290..300 {
            incremental.insert(ds.vector(i));
        }
        assert_eq!(incremental.len(), full.len());
        let mut rng_a = StdRng::seed_from_u64(10);
        let mut rng_b = StdRng::seed_from_u64(10);
        for qi in 0..ds.n_queries() {
            let a = full.search(ds.query(qi), 5, 4, &mut rng_a);
            let b = incremental.search(ds.query(qi), 5, 4, &mut rng_b);
            let ids_a: Vec<u32> = a.neighbors.iter().map(|&(id, _)| id).collect();
            let ids_b: Vec<u32> = b.neighbors.iter().map(|&(id, _)| id).collect();
            // KMeans saw slightly different data, so allow near-identical
            // rather than exact: overlap ≥ 4 of 5.
            let overlap = ids_a.iter().filter(|id| ids_b.contains(id)).count();
            assert!(overlap >= 4, "query {qi}: {ids_a:?} vs {ids_b:?}");
        }
    }

    #[test]
    fn removed_vectors_vanish_from_search_immediately() {
        let ds = dataset(400, 16);
        let mut index = build(&ds, 4);
        let mut rng = StdRng::seed_from_u64(9);
        // Insert a vector identical to the query, confirm it wins, then
        // tombstone it: the next search must not return it, under every
        // re-ranking strategy.
        let probe = ds.query(0).to_vec();
        let new_id = index.insert(&probe);
        let res = index.search(&probe, 3, 4, &mut rng);
        assert_eq!(res.neighbors[0].0, new_id);

        assert!(index.remove(new_id));
        assert!(index.is_deleted(new_id));
        assert_eq!(index.n_live(), 400);
        for strategy in [
            RerankStrategy::ErrorBound,
            RerankStrategy::TopCandidates(100),
            RerankStrategy::None,
        ] {
            let res = index.search_with(&probe, 3, 4, strategy, &mut rng);
            assert_eq!(res.neighbors.len(), 3);
            assert!(
                res.neighbors.iter().all(|&(id, _)| id != new_id),
                "{strategy:?} returned a tombstoned id"
            );
        }
        // Double-remove and out-of-range are clean no-ops.
        assert!(!index.remove(new_id));
        assert!(!index.remove(10_000));
        assert_eq!(index.n_deleted(), 1);
    }

    #[test]
    fn tombstones_survive_save_and_load() {
        let ds = dataset(300, 16);
        let index = build(&ds, 4);
        for id in [3u32, 77, 140, 299] {
            assert!(index.remove(id));
        }
        let path =
            std::env::temp_dir().join(format!("rabitq-ivf-tombstones-{}.rbq", std::process::id()));
        index.save(&path).unwrap();
        let loaded = IvfRabitq::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.n_deleted(), 4);
        assert_eq!(loaded.n_live(), 296);
        for id in [3u32, 77, 140, 299] {
            assert!(loaded.is_deleted(id));
        }
        let mut rng = StdRng::seed_from_u64(12);
        let res = loaded.search(ds.vector(77), 5, 4, &mut rng);
        assert!(res.neighbors.iter().all(|&(id, _)| id != 77));
    }

    #[test]
    fn reused_scratch_matches_fresh_search_bit_for_bit() {
        // One scratch reused across queries and strategies must reproduce
        // the allocating wrapper exactly (same RNG streams).
        let ds = dataset(1500, 32);
        let index = build(&ds, 10);
        let mut scratch = SearchScratch::new();
        for strategy in [
            RerankStrategy::ErrorBound,
            RerankStrategy::TopCandidates(200),
            RerankStrategy::None,
        ] {
            for qi in 0..ds.n_queries() {
                let seed = 1000 + qi as u64;
                let mut rng_a = StdRng::seed_from_u64(seed);
                let mut rng_b = StdRng::seed_from_u64(seed);
                let fresh = index.search_with(ds.query(qi), 5, 6, strategy, &mut rng_a);
                let (e, r) =
                    index.search_into(ds.query(qi), 5, 6, strategy, &mut scratch, &mut rng_b);
                assert_eq!(
                    scratch.neighbors, fresh.neighbors,
                    "{strategy:?} query {qi}"
                );
                assert_eq!(e, fresh.n_estimated);
                assert_eq!(r, fresh.n_reranked);
            }
        }
    }

    #[test]
    fn remove_through_shared_reference_is_thread_safe() {
        // The atomic tombstone bitmap lets `remove` take &self; racing
        // removers must tombstone every id exactly once in total.
        let ds = dataset(512, 16);
        let index = build(&ds, 4);
        let hits: usize = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..4 {
                let index = &index;
                handles
                    .push(scope.spawn(move || (0..512u32).filter(|&id| index.remove(id)).count()));
            }
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(hits, 512, "every id removed exactly once across threads");
        assert_eq!(index.n_deleted(), 512);
        assert_eq!(index.n_live(), 0);
    }

    #[test]
    fn cancelled_token_bails_without_results() {
        let ds = dataset(1000, 32);
        let index = build(&ds, 8);
        let mut scratch = SearchScratch::new();
        let token = CancelToken::new();
        token.cancel();
        for strategy in [
            RerankStrategy::ErrorBound,
            RerankStrategy::TopCandidates(100),
            RerankStrategy::None,
        ] {
            let mut rng = StdRng::seed_from_u64(21);
            let got = index.search_into_cancellable(
                ds.query(0),
                5,
                8,
                strategy,
                &mut scratch,
                &mut rng,
                &token,
            );
            assert!(got.is_none(), "{strategy:?} must observe cancellation");
            assert!(
                scratch.neighbors.is_empty(),
                "partial candidates must not leak"
            );
        }
    }

    #[test]
    fn uncancelled_token_matches_plain_search_bit_for_bit() {
        let ds = dataset(1200, 32);
        let index = build(&ds, 8);
        let mut scratch_a = SearchScratch::new();
        let mut scratch_b = SearchScratch::new();
        let token = CancelToken::with_deadline(
            std::time::Instant::now() + std::time::Duration::from_secs(3600),
        );
        for qi in 0..ds.n_queries() {
            let seed = 3000 + qi as u64;
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let plain = index.search_into(
                ds.query(qi),
                5,
                8,
                RerankStrategy::ErrorBound,
                &mut scratch_a,
                &mut rng_a,
            );
            let cancellable = index
                .search_into_cancellable(
                    ds.query(qi),
                    5,
                    8,
                    RerankStrategy::ErrorBound,
                    &mut scratch_b,
                    &mut rng_b,
                    &token,
                )
                .expect("far deadline never cancels");
            assert_eq!(plain, cancellable, "query {qi}");
            assert_eq!(scratch_a.neighbors, scratch_b.neighbors, "query {qi}");
        }
    }

    #[test]
    fn k_zero_returns_empty() {
        let ds = dataset(100, 16);
        let index = build(&ds, 4);
        let mut rng = StdRng::seed_from_u64(7);
        let res = index.search(ds.query(0), 0, 4, &mut rng);
        assert!(res.neighbors.is_empty());
    }

    #[test]
    fn nprobe_beyond_bucket_count_is_clamped() {
        let ds = dataset(300, 16);
        let index = build(&ds, 4);
        let mut rng = StdRng::seed_from_u64(8);
        let res = index.search(ds.query(0), 3, 100, &mut rng);
        assert_eq!(res.neighbors.len(), 3);
    }
}
