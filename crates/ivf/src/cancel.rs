//! Cooperative query cancellation.
//!
//! A [`CancelToken`] is a monotonic deadline plus a shared kill flag.
//! It lives in this crate because the index scan is the innermost loop
//! that must observe it: [`crate::IvfRabitq::search_into_cancellable`]
//! checks the token at each probed-bucket boundary, and higher layers
//! (segment loops, batch dispatch, the HTTP router) thread the same
//! token down so one check granularity covers the whole request.
//!
//! Checks are cheap — one relaxed atomic load plus (when a deadline is
//! set) one vDSO clock read — so per-bucket polling adds nothing
//! measurable to a scan that touches thousands of codes per bucket.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A cooperative cancellation handle: an optional monotonic deadline
/// plus a shared kill flag. Cloning is cheap (an `Arc` bump) and every
/// clone observes the same flag, so a router can keep one half while a
/// worker polls the other.
///
/// The default token never cancels — and, crucially, carries no
/// allocation at all (both fields `None`), so the plain search paths
/// that wrap [`CancelToken::none`] around every call keep their
/// zero-heap-allocation guarantee (see `tests/alloc_free.rs`).
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    deadline: Option<Instant>,
    flag: Option<Arc<AtomicBool>>,
}

impl CancelToken {
    /// A token that never reports cancellation — the identity element
    /// for cancellation plumbing. Carries no flag, so
    /// [`CancelToken::cancel`] on it is a no-op; use
    /// [`CancelToken::new`] for a manually cancellable token.
    pub fn none() -> Self {
        Self::default()
    }

    /// A deadline-free token that cancels only when
    /// [`CancelToken::cancel`] fires.
    pub fn new() -> Self {
        Self {
            deadline: None,
            flag: Some(Arc::new(AtomicBool::new(false))),
        }
    }

    /// A token that reports cancellation once `deadline` passes (or
    /// [`CancelToken::cancel`] fires, whichever comes first).
    pub fn with_deadline(deadline: Instant) -> Self {
        Self {
            deadline: Some(deadline),
            flag: Some(Arc::new(AtomicBool::new(false))),
        }
    }

    /// The deadline this token enforces, if any.
    #[inline]
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Trips the kill flag: every clone of this token reports cancelled
    /// from now on. Idempotent; a no-op on the flag-less
    /// [`CancelToken::none`] token.
    pub fn cancel(&self) {
        if let Some(flag) = &self.flag {
            flag.store(true, Ordering::Release);
        }
    }

    /// Whether the work guarded by this token should stop: the flag was
    /// tripped or the deadline has passed. This is the per-checkpoint
    /// poll — a relaxed load, plus one clock read only when a deadline
    /// is set.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        let Some(flag) = &self.flag else {
            return false;
        };
        if flag.load(Ordering::Relaxed) {
            return true;
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => {
                // Latch the observation so later polls skip the clock
                // read and racing clones agree.
                flag.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn default_token_never_cancels() {
        let t = CancelToken::none();
        assert!(!t.is_cancelled());
        assert_eq!(t.deadline(), None);
        t.cancel();
        assert!(!t.is_cancelled(), "none() carries no flag to trip");
    }

    #[test]
    fn explicit_cancel_trips_every_clone() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!clone.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
        assert!(clone.is_cancelled(), "clones share the kill flag");
    }

    #[test]
    fn past_deadline_reports_cancelled() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        // Latch: still cancelled on re-poll.
        assert!(t.is_cancelled());
    }

    #[test]
    fn future_deadline_does_not_cancel_yet() {
        let t = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled(), "explicit cancel overrides a far deadline");
    }

    #[test]
    fn deadline_expiry_observed_by_clones_after_one_poll() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        let clone = t.clone();
        assert!(t.is_cancelled());
        assert!(clone.is_cancelled());
    }
}
