//! Property-based tests for the additive-quantization baseline.

use proptest::prelude::*;
use rabitq_aq::{AdditiveQuantizer, AqConfig};
use rabitq_math::vecs;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn trained(n: usize, dim: usize, m: usize, seed: u64) -> (Vec<f32>, AdditiveQuantizer) {
    let mut rng = StdRng::seed_from_u64(seed);
    let data = rabitq_math::rng::standard_normal_vec(&mut rng, n * dim);
    let cfg = AqConfig {
        m,
        k_bits: 4,
        refine_iters: 1,
        icm_passes: 1,
        kmeans_iters: 5,
        training_sample: None,
        seed,
    };
    let aq = AdditiveQuantizer::train(&data, dim, &cfg);
    (data, aq)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn decode_is_sum_of_selected_codewords(seed in 0u64..100) {
        let (_, aq) = trained(80, 8, 3, seed);
        let code = [1u8, 5, 14];
        let mut rec = vec![0.0f32; 8];
        aq.decode(&code, &mut rec);
        for d in 0..8 {
            let want: f32 = (0..3).map(|m| aq.codeword(m, code[m] as usize)[d]).sum();
            prop_assert!((rec[d] - want).abs() < 1e-5);
        }
    }

    #[test]
    fn adc_equals_decoded_distance(seed in 0u64..100) {
        let (data, aq) = trained(80, 8, 3, seed);
        let codes = aq.encode_set(data.chunks_exact(8).take(30));
        let mut rng = StdRng::seed_from_u64(seed ^ 1);
        let query = rabitq_math::rng::standard_normal_vec(&mut rng, 8);
        let luts = aq.build_ip_luts(&query);
        let q_norm_sq = vecs::dot(&query, &query);
        let mut rec = vec![0.0f32; 8];
        for i in 0..codes.len() {
            let code = codes.codes.code(i);
            let adc = aq.adc_distance(&luts, q_norm_sq, code, codes.recon_norms_sq[i]);
            aq.decode(code, &mut rec);
            let direct = vecs::l2_sq(&query, &rec);
            prop_assert!((adc - direct).abs() < 1e-2 * (1.0 + direct.abs()));
        }
    }

    #[test]
    fn recon_norms_match_decoded_vectors(seed in 0u64..100) {
        let (data, aq) = trained(60, 8, 2, seed);
        let codes = aq.encode_set(data.chunks_exact(8).take(20));
        let mut rec = vec![0.0f32; 8];
        for i in 0..codes.len() {
            aq.decode(codes.codes.code(i), &mut rec);
            let want = vecs::dot(&rec, &rec);
            prop_assert!((codes.recon_norms_sq[i] - want).abs() < 1e-3 * (1.0 + want));
        }
    }

    #[test]
    fn encoding_reduces_error_vs_zero_code(seed in 0u64..100) {
        // The chosen code must beat the all-zeros code for most vectors
        // (it is greedily optimal per codebook, so always ≤ on average).
        let (data, aq) = trained(60, 8, 3, seed);
        let mut rec = vec![0.0f32; 8];
        let mut code = vec![0u8; 3];
        let mut wins = 0usize;
        let total = 30usize;
        for i in 0..total {
            let v = &data[i * 8..(i + 1) * 8];
            aq.icm_encode(v, &mut code);
            aq.decode(&code, &mut rec);
            let chosen = vecs::l2_sq(v, &rec);
            aq.decode(&[0, 0, 0], &mut rec);
            let zero = vecs::l2_sq(v, &rec);
            if chosen <= zero + 1e-5 {
                wins += 1;
            }
        }
        prop_assert!(wins >= total * 9 / 10, "{wins}/{total}");
    }
}
