//! # rabitq-aq — LSQ-style additive quantization baseline
//!
//! The RaBitQ paper's third baseline, LSQ/LSQ++ (Martinez et al., ECCV
//! 2016/2018), belongs to the *additive quantization* family: a vector is
//! approximated by the **sum of `M` full-dimensional codewords**, one from
//! each of `M` codebooks of `2^k` entries,
//!
//! ```text
//! x ≈ x̂ = Σ_m C_m[i_m],    i_m ∈ [0, 2^k).
//! ```
//!
//! Finding the optimal code `(i_1, …, i_M)` is NP-hard; LSQ++'s contribution
//! is a better approximate solver. This crate implements the standard
//! alternating scheme the LSQ line builds on (documented as a substitution
//! in `DESIGN.md` §5):
//!
//! * **init** — residual vector quantization (RVQ): codebook `m` is KMeans
//!   over the residuals left by codebooks `1..m`;
//! * **encoding** — iterated conditional modes (ICM): cyclic coordinate
//!   descent over the `M` code indices;
//! * **codebook update** — with codes fixed, codebook `m`'s entry `j` is the
//!   mean of `x − Σ_{m'≠m} C_{m'}[i_{m'}]` over vectors assigned `j` at `m`.
//!
//! It reproduces the paper's qualitative findings about LSQ: accuracy can
//! beat PQ at equal code length, but encoding is orders of magnitude slower
//! (Table 4's ">24 h" row) and quality is unstable across datasets.
//!
//! Distance estimation is ADC in inner-product form:
//! `‖q − x̂‖² = ‖q‖² − 2Σ_m ⟨q, C_m[i_m]⟩ + ‖x̂‖²`, with `‖x̂‖²` precomputed
//! at index time and `⟨q, C_m[·]⟩` tabulated per query — `k = 4` tables are
//! fast-scannable with the same machinery as PQ (`rabitq-pq::fastscan`).

use rabitq_kmeans::{train as kmeans_train, KMeansConfig};
use rabitq_math::vecs;
use rabitq_pq::{PqCodes, PqPacked, QuantizedLuts};

/// Configuration for [`AdditiveQuantizer::train`].
#[derive(Clone, Debug)]
pub struct AqConfig {
    /// Number of codebooks `M`.
    pub m: usize,
    /// Bits per codebook (4 → 16 codewords, enabling fast scan).
    pub k_bits: u8,
    /// Alternating (ICM re-encode + codebook refit) rounds after RVQ init.
    pub refine_iters: usize,
    /// ICM sweeps per encoding.
    pub icm_passes: usize,
    /// KMeans iterations for the RVQ init.
    pub kmeans_iters: usize,
    /// Cap on training vectors.
    pub training_sample: Option<usize>,
    /// RNG seed.
    pub seed: u64,
}

impl AqConfig {
    /// A default mirroring LSQ's `k = 4` fast-scan setup.
    pub fn x4(m: usize) -> Self {
        Self {
            m,
            k_bits: 4,
            refine_iters: 3,
            icm_passes: 2,
            kmeans_iters: 15,
            training_sample: Some(20_000),
            seed: 0xA9,
        }
    }
}

/// A trained additive quantizer.
#[derive(Clone, Debug)]
pub struct AdditiveQuantizer {
    dim: usize,
    m: usize,
    k: usize,
    /// `m × k × dim` codewords, flattened.
    codebooks: Vec<f32>,
    icm_passes: usize,
}

/// Encoded vectors plus the per-vector `‖x̂‖²` needed by the estimator.
#[derive(Clone, Debug)]
pub struct AqCodes {
    /// Code indices, stored in the PQ layout (`n × m` bytes) so the PQ
    /// fast-scan packer applies unchanged.
    pub codes: PqCodes,
    /// `‖x̂‖²` per vector.
    pub recon_norms_sq: Vec<f32>,
}

impl AqCodes {
    /// Number of encoded vectors.
    #[inline]
    pub fn len(&self) -> usize {
        self.recon_norms_sq.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.recon_norms_sq.is_empty()
    }
}

impl AdditiveQuantizer {
    /// Trains codebooks over `data` (flat `n × dim`).
    ///
    /// # Panics
    /// Panics on an empty dataset, `m == 0`, or `k_bits ∉ {4, 8}`.
    pub fn train(data: &[f32], dim: usize, config: &AqConfig) -> Self {
        assert!(dim > 0 && data.len().is_multiple_of(dim), "data shape");
        assert!(config.m > 0, "M must be positive");
        assert!(config.k_bits == 4 || config.k_bits == 8, "k must be 4 or 8");
        let n_all = data.len() / dim;
        assert!(n_all > 0, "cannot train on an empty dataset");
        let k = 1usize << config.k_bits;
        let n = config.training_sample.map_or(n_all, |cap| cap.min(n_all));
        let train_data = &data[..n * dim];

        // ---- RVQ init: codebook m = KMeans over current residuals. ----
        let mut residuals = train_data.to_vec();
        let mut codebooks = vec![0.0f32; config.m * k * dim];
        let mut codes = vec![0u8; n * config.m];
        for m in 0..config.m {
            let mut km_cfg = KMeansConfig::new(k);
            km_cfg.max_iters = config.kmeans_iters;
            km_cfg.seed = config.seed.wrapping_add(m as u64);
            let km = kmeans_train(&residuals, dim, &km_cfg);
            let book = &mut codebooks[m * k * dim..(m + 1) * k * dim];
            for c in 0..k {
                book[c * dim..(c + 1) * dim].copy_from_slice(km.centroid(c.min(km.k() - 1)));
            }
            for i in 0..n {
                let r = &mut residuals[i * dim..(i + 1) * dim];
                let (c, _) = km.assign(r);
                codes[i * config.m + m] = c as u8;
                vecs::sub_assign(r, km.centroid(c));
            }
        }

        let mut aq = Self {
            dim,
            m: config.m,
            k,
            codebooks,
            icm_passes: config.icm_passes,
        };

        // ---- Alternating refinement. ----
        for _ in 0..config.refine_iters {
            // (1) Re-encode with ICM.
            for i in 0..n {
                let v = &train_data[i * dim..(i + 1) * dim];
                aq.icm_encode(v, &mut codes[i * config.m..(i + 1) * config.m]);
            }
            // (2) Refit each codebook against the residuals it must explain.
            aq.refit_codebooks(train_data, &codes, n);
        }
        aq
    }

    /// With codes fixed, re-estimate every codeword as the mean of its
    /// assigned residuals (skipping empty codewords).
    fn refit_codebooks(&mut self, data: &[f32], codes: &[u8], n: usize) {
        let (dim, m, k) = (self.dim, self.m, self.k);
        let mut recon = vec![0.0f32; dim];
        for target in 0..m {
            let mut sums = vec![0.0f64; k * dim];
            let mut counts = vec![0usize; k];
            for i in 0..n {
                let v = &data[i * dim..(i + 1) * dim];
                let code = &codes[i * m..(i + 1) * m];
                // Residual w.r.t. all codebooks except `target`.
                recon.fill(0.0);
                for (mm, &c) in code.iter().enumerate() {
                    if mm != target {
                        vecs::add_assign(&mut recon, self.codeword(mm, c as usize));
                    }
                }
                let j = code[target] as usize;
                counts[j] += 1;
                for (d, s) in sums[j * dim..(j + 1) * dim].iter_mut().enumerate() {
                    *s += (v[d] - recon[d]) as f64;
                }
            }
            let book = &mut self.codebooks[target * k * dim..(target + 1) * k * dim];
            for j in 0..k {
                if counts[j] > 0 {
                    let inv = 1.0 / counts[j] as f64;
                    for (dst, &s) in book[j * dim..(j + 1) * dim]
                        .iter_mut()
                        .zip(sums[j * dim..(j + 1) * dim].iter())
                    {
                        *dst = (s * inv) as f32;
                    }
                }
            }
        }
    }

    /// Vector dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of codebooks `M`.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Codeword `j` of codebook `m`.
    #[inline]
    pub fn codeword(&self, m: usize, j: usize) -> &[f32] {
        let base = (m * self.k + j) * self.dim;
        &self.codebooks[base..base + self.dim]
    }

    /// ICM encoding: greedy RVQ init then cyclic coordinate descent.
    /// `code` must hold `m` bytes and is fully overwritten.
    pub fn icm_encode(&self, v: &[f32], code: &mut [u8]) {
        assert_eq!(v.len(), self.dim, "vector dimensionality");
        assert_eq!(code.len(), self.m, "code length");
        // Greedy init: choose each codeword against the running residual.
        let mut residual = v.to_vec();
        for (m, slot) in code.iter_mut().enumerate() {
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for j in 0..self.k {
                let d = vecs::l2_sq(&residual, self.codeword(m, j));
                if d < best_d {
                    best_d = d;
                    best = j;
                }
            }
            *slot = best as u8;
            vecs::sub_assign(&mut residual, self.codeword(m, best));
        }
        // ICM sweeps: residual currently equals v − x̂.
        for _ in 0..self.icm_passes {
            let mut changed = false;
            for (m, slot) in code.iter_mut().enumerate() {
                // Residual with codebook m's contribution added back.
                vecs::add_assign(&mut residual, self.codeword(m, *slot as usize));
                let mut best = *slot as usize;
                let mut best_d = f32::INFINITY;
                for j in 0..self.k {
                    let d = vecs::l2_sq(&residual, self.codeword(m, j));
                    if d < best_d {
                        best_d = d;
                        best = j;
                    }
                }
                if best != *slot as usize {
                    changed = true;
                    *slot = best as u8;
                }
                vecs::sub_assign(&mut residual, self.codeword(m, best));
            }
            if !changed {
                break;
            }
        }
    }

    /// Encodes a batch of vectors, precomputing `‖x̂‖²`.
    pub fn encode_set<'a, I>(&self, vectors: I) -> AqCodes
    where
        I: IntoIterator<Item = &'a [f32]>,
    {
        let mut codes = PqCodes {
            m: self.m,
            codes: Vec::new(),
        };
        let mut norms = Vec::new();
        let mut code = vec![0u8; self.m];
        let mut recon = vec![0.0f32; self.dim];
        for v in vectors {
            self.icm_encode(v, &mut code);
            codes.codes.extend_from_slice(&code);
            self.decode(&code, &mut recon);
            norms.push(vecs::dot(&recon, &recon));
        }
        AqCodes {
            codes,
            recon_norms_sq: norms,
        }
    }

    /// Reconstructs `x̂ = Σ_m C_m[i_m]`.
    pub fn decode(&self, code: &[u8], out: &mut [f32]) {
        assert_eq!(code.len(), self.m, "code length");
        assert_eq!(out.len(), self.dim, "output length");
        out.fill(0.0);
        for (m, &j) in code.iter().enumerate() {
            vecs::add_assign(out, self.codeword(m, j as usize));
        }
    }

    /// Per-query inner-product tables: `lut[m][j] = ⟨q, C_m[j]⟩`.
    pub fn build_ip_luts(&self, query: &[f32]) -> Vec<f32> {
        assert_eq!(query.len(), self.dim, "query dimensionality");
        let mut luts = vec![0.0f32; self.m * self.k];
        for m in 0..self.m {
            for j in 0..self.k {
                luts[m * self.k + j] = vecs::dot(query, self.codeword(m, j));
            }
        }
        luts
    }

    /// Single-code ADC distance:
    /// `‖q‖² − 2Σ_m lut[m][i_m] + ‖x̂‖²`.
    #[inline]
    pub fn adc_distance(
        &self,
        ip_luts: &[f32],
        q_norm_sq: f32,
        code: &[u8],
        recon_norm_sq: f32,
    ) -> f32 {
        let ip: f32 = code
            .iter()
            .enumerate()
            .map(|(m, &j)| ip_luts[m * self.k + j as usize])
            .sum();
        q_norm_sq - 2.0 * ip + recon_norm_sq
    }

    /// Batch (fast-scan) distance estimation over packed codes; requires
    /// `k = 4`. The inner products run through the same u8-quantized LUT
    /// machinery as PQx4fs, inheriting its dynamic-range behaviour.
    pub fn fastscan_distances(
        &self,
        query: &[f32],
        packed: &PqPacked,
        codes: &AqCodes,
        out: &mut Vec<f32>,
    ) {
        assert_eq!(self.k, 16, "fast scan requires k = 4");
        let ip_luts = self.build_ip_luts(query);
        let qluts = QuantizedLuts::from_f32_luts(&ip_luts, self.m, self.k);
        let q_norm_sq = vecs::dot(query, query);
        packed.scan_all(&qluts, out);
        for (est_ip, &norm_sq) in out.iter_mut().zip(codes.recon_norms_sq.iter()) {
            *est_ip = q_norm_sq - 2.0 * *est_ip + norm_sq;
        }
    }

    /// Mean squared reconstruction error over a dataset.
    pub fn reconstruction_mse(&self, data: &[f32]) -> f64 {
        let n = data.len() / self.dim;
        if n == 0 {
            return 0.0;
        }
        let mut code = vec![0u8; self.m];
        let mut rec = vec![0.0f32; self.dim];
        let mut acc = 0.0f64;
        for i in 0..n {
            let v = &data[i * self.dim..(i + 1) * self.dim];
            self.icm_encode(v, &mut code);
            self.decode(&code, &mut rec);
            acc += vecs::l2_sq(v, &rec) as f64;
        }
        acc / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabitq_math::rng::standard_normal_vec;
    use rabitq_pq::{PqConfig, ProductQuantizer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gaussian_data(n: usize, dim: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        standard_normal_vec(&mut rng, n * dim)
    }

    fn small_config(m: usize) -> AqConfig {
        AqConfig {
            m,
            k_bits: 4,
            refine_iters: 2,
            icm_passes: 2,
            kmeans_iters: 10,
            training_sample: None,
            seed: 9,
        }
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let (n, dim, m) = (300, 16, 4);
        let data = gaussian_data(n, dim, 11);
        let a = AdditiveQuantizer::train(&data, dim, &small_config(m));
        let b = AdditiveQuantizer::train(&data, dim, &small_config(m));
        for seg in 0..m {
            for j in 0..4 {
                assert_eq!(
                    a.codeword(seg, j),
                    b.codeword(seg, j),
                    "segment {seg}, word {j}"
                );
            }
        }
        let ca = a.encode_set(data.chunks_exact(dim));
        let cb = b.encode_set(data.chunks_exact(dim));
        assert_eq!(ca.codes.codes, cb.codes.codes);

        let c = AdditiveQuantizer::train(
            &data,
            dim,
            &AqConfig {
                seed: 10,
                ..small_config(m)
            },
        );
        assert_ne!(
            c.codeword(0, 0),
            a.codeword(0, 0),
            "a different seed must land on a different codebook"
        );
    }

    #[test]
    fn more_refine_iterations_do_not_worsen_mse() {
        let (n, dim, m) = (400, 16, 4);
        let data = gaussian_data(n, dim, 12);
        let short = AdditiveQuantizer::train(
            &data,
            dim,
            &AqConfig {
                refine_iters: 0,
                ..small_config(m)
            },
        );
        let long = AdditiveQuantizer::train(
            &data,
            dim,
            &AqConfig {
                refine_iters: 4,
                ..small_config(m)
            },
        );
        let (mse_short, mse_long) = (
            short.reconstruction_mse(&data),
            long.reconstruction_mse(&data),
        );
        assert!(
            mse_long <= mse_short * 1.02,
            "alternating refinement regressed the objective: {mse_short} -> {mse_long}"
        );
    }

    #[test]
    fn training_sample_caps_cost_without_breaking_encoding() {
        let (n, dim, m) = (600, 16, 4);
        let data = gaussian_data(n, dim, 13);
        let sampled = AdditiveQuantizer::train(
            &data,
            dim,
            &AqConfig {
                training_sample: Some(100),
                ..small_config(m)
            },
        );
        // Training on a sample must still produce a quantizer that can
        // encode and decode the full set at sane error.
        let codes = sampled.encode_set(data.chunks_exact(dim));
        assert_eq!(codes.len(), n);
        let mse = sampled.reconstruction_mse(&data);
        // Baseline: predicting the zero vector costs E‖x‖² per vector.
        let zero_baseline: f64 = data
            .chunks_exact(dim)
            .map(|v| v.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>())
            .sum::<f64>()
            / n as f64;
        assert!(
            mse < zero_baseline / 2.0,
            "reconstruction ({mse}) must clearly beat the zero-vector baseline ({zero_baseline})"
        );
    }

    #[test]
    fn single_vector_dataset_trains_and_encodes() {
        let dim = 16;
        let data = gaussian_data(1, dim, 14);
        let aq = AdditiveQuantizer::train(&data, dim, &small_config(4));
        let codes = aq.encode_set(data.chunks_exact(dim));
        assert_eq!(codes.len(), 1);
        let mut out = vec![0.0f32; dim];
        aq.decode(&codes.codes.codes[..aq.m()], &mut out);
        // One vector, 16 codewords to spend: reconstruction should be
        // essentially exact.
        let err = rabitq_math::vecs::l2_sq(&out, &data);
        let norm = rabitq_math::vecs::l2_sq(&data, &vec![0.0; dim]);
        assert!(err < norm * 0.05, "relative error {}", err / norm);
    }

    #[test]
    fn adc_matches_distance_to_reconstruction() {
        let dim = 16;
        let data = gaussian_data(200, dim, 1);
        let aq = AdditiveQuantizer::train(&data, dim, &small_config(4));
        let codes = aq.encode_set(data.chunks_exact(dim));
        let query = gaussian_data(1, dim, 2);
        let luts = aq.build_ip_luts(&query);
        let q_norm_sq = vecs::dot(&query, &query);
        let mut rec = vec![0.0f32; dim];
        for i in 0..codes.len() {
            let code = codes.codes.code(i);
            let adc = aq.adc_distance(&luts, q_norm_sq, code, codes.recon_norms_sq[i]);
            aq.decode(code, &mut rec);
            let direct = vecs::l2_sq(&query, &rec);
            assert!(
                (adc - direct).abs() < 1e-2 * (1.0 + direct),
                "code {i}: {adc} vs {direct}"
            );
        }
    }

    #[test]
    fn icm_never_worsens_the_greedy_solution() {
        let dim = 16;
        let data = gaussian_data(300, dim, 3);
        let aq = AdditiveQuantizer::train(&data, dim, &small_config(4));
        // Compare full ICM encode against greedy-only (icm_passes = 0).
        let greedy_only = AdditiveQuantizer {
            icm_passes: 0,
            ..aq.clone()
        };
        let mut rec = vec![0.0f32; dim];
        let mut code = vec![0u8; 4];
        for i in 0..50 {
            let v = &data[i * dim..(i + 1) * dim];
            greedy_only.icm_encode(v, &mut code);
            greedy_only.decode(&code, &mut rec);
            let greedy_err = vecs::l2_sq(v, &rec);
            aq.icm_encode(v, &mut code);
            aq.decode(&code, &mut rec);
            let icm_err = vecs::l2_sq(v, &rec);
            assert!(
                icm_err <= greedy_err + 1e-4,
                "vector {i}: ICM {icm_err} vs greedy {greedy_err}"
            );
        }
    }

    #[test]
    fn aq_beats_pq_at_equal_code_length_on_gaussian_data() {
        // Full-dimensional codewords capture cross-segment structure that
        // PQ cannot; at equal (M, k) AQ's reconstruction must be at least
        // as good on generic data.
        let dim = 16;
        let data = gaussian_data(600, dim, 4);
        let aq = AdditiveQuantizer::train(&data, dim, &small_config(8));
        let pq_cfg = PqConfig {
            m: 8,
            k_bits: 4,
            train_iters: 15,
            training_sample: None,
            seed: 9,
        };
        let pq = ProductQuantizer::train(&data, dim, &pq_cfg);
        let aq_mse = aq.reconstruction_mse(&data);
        let pq_mse = pq.reconstruction_mse(&data);
        assert!(
            aq_mse < pq_mse * 1.05,
            "AQ MSE {aq_mse} should be ≤ PQ MSE {pq_mse}"
        );
    }

    #[test]
    fn fastscan_matches_exact_adc_within_lut_quantization() {
        let dim = 16;
        let data = gaussian_data(200, dim, 5);
        let aq = AdditiveQuantizer::train(&data, dim, &small_config(4));
        let codes = aq.encode_set(data.chunks_exact(dim));
        let packed = PqPacked::pack(&codes.codes);
        let query = gaussian_data(1, dim, 6);
        let mut fast = Vec::new();
        aq.fastscan_distances(&query, &packed, &codes, &mut fast);
        let luts = aq.build_ip_luts(&query);
        let q_norm_sq = vecs::dot(&query, &query);
        for i in 0..codes.len() {
            let exact = aq.adc_distance(
                &luts,
                q_norm_sq,
                codes.codes.code(i),
                codes.recon_norms_sq[i],
            );
            assert!(
                (fast[i] - exact).abs() < 0.15 * (1.0 + exact.abs()),
                "code {i}: {} vs {exact}",
                fast[i]
            );
        }
    }

    #[test]
    fn encoding_is_much_slower_than_pq_per_vector() {
        // The Table 4 qualitative claim: AQ/LSQ indexing cost dwarfs PQ's.
        // Compare operation counts via wall time on a small batch.
        let dim = 32;
        let data = gaussian_data(400, dim, 7);
        let aq = AdditiveQuantizer::train(&data, dim, &small_config(16));
        let pq_cfg = PqConfig {
            m: 16,
            k_bits: 4,
            train_iters: 10,
            training_sample: None,
            seed: 3,
        };
        let pq = ProductQuantizer::train(&data, dim, &pq_cfg);
        let t0 = std::time::Instant::now();
        let _ = aq.encode_set(data.chunks_exact(dim));
        let aq_time = t0.elapsed();
        let t1 = std::time::Instant::now();
        let _ = pq.encode_set(data.chunks_exact(dim));
        let pq_time = t1.elapsed();
        assert!(
            aq_time > pq_time,
            "AQ encode ({aq_time:?}) should be slower than PQ ({pq_time:?})"
        );
    }

    #[test]
    fn decode_sums_selected_codewords() {
        let dim = 8;
        let data = gaussian_data(100, dim, 8);
        let aq = AdditiveQuantizer::train(&data, dim, &small_config(2));
        let code = [3u8, 7u8];
        let mut rec = vec![0.0f32; dim];
        aq.decode(&code, &mut rec);
        for d in 0..dim {
            let want = aq.codeword(0, 3)[d] + aq.codeword(1, 7)[d];
            assert!((rec[d] - want).abs() < 1e-6);
        }
    }
}
